// Layer: 4 (schemes) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_SCHEMES_MULTICHANNEL_H_
#define AIRINDEX_SCHEMES_MULTICHANNEL_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "broadcast/channel_group.h"
#include "broadcast/geometry.h"
#include "data/dataset.h"
#include "schemes/access.h"
#include "schemes/btree.h"
#include "schemes/scheme.h"

namespace airindex {

/// How index and data are spread over the channels of a group (the
/// allocation axis of the multichannel broadcast papers).
enum class ChannelAllocation {
  /// Channel 0 carries only the global B+-tree index; channels 1..N-1
  /// carry flat, key-partitioned data. Every leaf pointer crosses to a
  /// data channel, so every hit pays exactly one switch.
  kIndexOnOne,
  /// Each channel carries an independent single-channel broadcast of the
  /// base scheme over one key partition. Any registered scheme plugs in
  /// unchanged; a request pays at most one switch to reach the key's
  /// home channel.
  kDataPartitioned,
  /// Every channel carries a full copy of the global B+-tree index
  /// followed by its own key partition of the data. Index descent is
  /// switch-free; only the final data jump may hop.
  kReplicatedIndex,
};

/// Short display name ("index-on-one", ...).
const char* ChannelAllocationToString(ChannelAllocation allocation);

/// Parses a display name back to the enum; false if unknown.
bool ParseChannelAllocation(std::string_view text, ChannelAllocation* out);

/// Multichannel knobs. The defaults describe the classic single-channel
/// testbed; BroadcastServer only engages the multichannel engine when
/// num_channels > 1, so a default-constructed value is always safe.
struct MultiChannelParams {
  int num_channels = 1;
  /// Broadcast bytes a client loses per channel hop.
  Bytes switch_cost_bytes = 0;
  ChannelAllocation allocation = ChannelAllocation::kDataPartitioned;
};

/// Outcome of the conflict-aware placer (kDataPartitioned with an active
/// scheduler): how many cross-channel hot-occurrence pairs were checked
/// and how many shared a slot-time before and after the per-channel
/// rotations. Co-requested hot records never collide when collisions is
/// 0 — the common case for balanced partitions.
struct ConflictPlacement {
  std::int64_t hot_pairs = 0;
  std::int64_t baseline_collisions = 0;
  std::int64_t collisions = 0;
  /// Chosen rotation (ScheduleParams::rotation_slots) per partition.
  std::vector<int> rotations;
};

/// A broadcast program spread over a ChannelGroup.
///
/// Implements the BroadcastScheme interface so the simulator, the error
/// model, and the deadline policy all work unchanged; Access() remains a
/// pure function of (key, tune-in time). Which channel the client starts
/// on is itself a pure hash of the tune-in time (a client wakes up on an
/// arbitrary channel), so replications stay bit-identical for any --jobs.
///
/// For kDataPartitioned the base scheme kind is built per partition via
/// BuildScheme — all registered schemes plug in. The two index-centric
/// allocations lay out the global B+-tree air index themselves (the base
/// kind only selects the partition count semantics), as in the
/// multichannel XML-stream engine of Khatibi & Khatibi.
class MultiChannelProgram : public BroadcastScheme {
 public:
  /// Builds the group. Fails when num_channels < 2 (a single channel
  /// must bypass the wrapper so single-channel runs stay byte-identical),
  /// when the dataset has fewer records than data partitions, or when a
  /// per-partition base scheme cannot be built.
  static Result<std::unique_ptr<MultiChannelProgram>> Build(
      SchemeKind kind, std::shared_ptr<const Dataset> dataset,
      const BucketGeometry& geometry, const SchemeParams& params,
      const MultiChannelParams& multichannel);

  // BroadcastScheme interface. channel() exposes channel 0 of the group
  // (the index channel for kIndexOnOne) for structure-agnostic callers.
  const Channel& channel() const override { return group().channel(0); }
  AccessResult Access(std::string_view key, Bytes tune_in) const override;
  const char* name() const override { return name_.c_str(); }

  /// The channel group.
  const ChannelGroup& group() const { return *group_; }

  /// The allocation strategy in effect.
  ChannelAllocation allocation() const { return allocation_; }

  /// Number of key partitions the data is split into.
  int num_partitions() const {
    return static_cast<int>(partition_first_keys_.size());
  }

  /// Id of the channel whose data partition covers `key`.
  int HomeChannel(std::string_view key) const;

  /// Channel a client tuning in at `tune_in` starts listening on: a pure
  /// hash of the tune-in time, except kIndexOnOne where every walk must
  /// start on the index channel 0.
  int StartChannel(Bytes tune_in) const;

  /// Conflict-aware placement outcome; all zeros/empty unless the group
  /// was built with an active scheduler.
  const ConflictPlacement& conflict_placement() const { return conflict_; }

 private:
  MultiChannelProgram() = default;

  AccessResult AccessPartitioned(std::string_view key, Bytes tune_in) const;
  AccessResult AccessIndexed(std::string_view key, Bytes tune_in) const;

  // Always engaged by Build before the object escapes; optional only
  // because ChannelGroup has no default state.
  std::optional<ChannelGroup> group_;

  ChannelAllocation allocation_ = ChannelAllocation::kDataPartitioned;
  std::string name_;
  /// First key of each data partition, in partition order (HomeChannel
  /// does an upper_bound over these).
  std::vector<std::string> partition_first_keys_;
  /// Channel id of partition 0 (0 for partitioned/replicated, 1 for
  /// index-on-one where channel 0 is the index).
  int first_data_channel_ = 0;

  // kDataPartitioned: one base-scheme program per partition, in channel
  // order. Each sub-scheme keeps its own sub-dataset alive.
  std::vector<std::unique_ptr<BroadcastScheme>> partitions_;
  ConflictPlacement conflict_;

  // kIndexOnOne / kReplicatedIndex: the global tree + parent dataset
  // (pointer entries view its key storage). Optional because BTree, like
  // ChannelGroup, has no default state.
  std::shared_ptr<const Dataset> dataset_;
  std::optional<BTree> tree_;
};

}  // namespace airindex

#endif  // AIRINDEX_SCHEMES_MULTICHANNEL_H_
