#include "schemes/integrated_signature.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace airindex {

Result<IntegratedSignatureIndexing> IntegratedSignatureIndexing::Build(
    std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
    SignatureParams params, int group_size) {
  if (dataset == nullptr || dataset->size() == 0) {
    return Status::InvalidArgument(
        "integrated signature indexing needs a non-empty dataset");
  }
  if (group_size < 1) {
    return Status::InvalidArgument("group_size must be at least 1");
  }
  if (geometry.signature_bytes <= 0 || params.bits_per_attribute <= 0 ||
      params.bits_per_attribute > geometry.signature_bytes * 8) {
    return Status::InvalidArgument("bad signature configuration");
  }

  // Group signatures live in a wider bit space than record signatures so
  // superimposing a whole group does not saturate them.
  const Bytes group_sig_bytes =
      ResolveGroupSignatureBytes(geometry, params, group_size);
  SignatureGenerator generator(group_sig_bytes, params);
  const int words = generator.words();
  const int num_records = dataset->size();

  std::vector<Bucket> buckets;
  for (int first = 0; first < num_records; first += group_size) {
    const int last = std::min(first + group_size, num_records) - 1;
    Bucket sig_bucket;
    sig_bucket.kind = BucketKind::kSignature;
    sig_bucket.size = group_sig_bytes;
    sig_bucket.record_id = first;
    sig_bucket.signature.assign(static_cast<std::size_t>(words), 0);
    for (int rec = first; rec <= last; ++rec) {
      const std::vector<std::uint64_t> sig =
          generator.RecordSignature(dataset->record(rec));
      for (int w = 0; w < words; ++w) {
        sig_bucket.signature[static_cast<std::size_t>(w)] |=
            sig[static_cast<std::size_t>(w)];
      }
    }
    buckets.push_back(std::move(sig_bucket));
    for (int rec = first; rec <= last; ++rec) {
      Bucket data_bucket;
      data_bucket.kind = BucketKind::kData;
      data_bucket.size = geometry.data_bucket_bytes();
      data_bucket.record_id = rec;
      buckets.push_back(std::move(data_bucket));
    }
  }

  Result<Channel> channel = Channel::Create(std::move(buckets));
  if (!channel.ok()) return channel.status();
  return IntegratedSignatureIndexing(std::move(dataset), generator,
                                     std::move(channel).value(), group_size);
}

namespace {

// The integrated-signature sift over either channel view
// (schemes/channel_view.h).
template <typename View>
AccessResult IntegratedWalk(const View& view, std::string_view key,
                            Bytes tune_in, const Dataset& dataset,
                            const SignatureGenerator& generator,
                            int group_size) {
  AccessResult result;
  const Bytes cycle = view.cycle_bytes();
  const std::size_t num = view.num_buckets();
  const std::vector<std::uint64_t> query = generator.QuerySignature(key);
  const int words = generator.words();

  // Listen until the next complete *group signature* bucket.
  Bytes t = tune_in;
  std::size_t i = view.BucketAtPhase(t % cycle);
  if (view.start_phase(i) != t % cycle ||
      view.bucket(i).kind() != BucketKind::kSignature) {
    do {
      i = (i + 1) % num;
    } while (view.bucket(i).kind() != BucketKind::kSignature);
    t = view.NextArrivalOfPhase(view.start_phase(i), t);
  }
  result.tuning_time = t - tune_in;

  const int num_groups = (dataset.size() + group_size - 1) / group_size;
  for (int scanned = 0; scanned < num_groups; ++scanned) {
    const auto sig_bucket = view.bucket(i);
    t += sig_bucket.size();
    result.tuning_time += sig_bucket.size();
    ++result.probes;
    ++result.index_probes;
    const bool match = SignatureGenerator::Matches(
        sig_bucket.signature_words(), query.data(), words);
    // Index of the next group-signature bucket.
    std::size_t next_group = i + 1;
    while (next_group < num &&
           view.bucket(next_group).kind() != BucketKind::kSignature) {
      ++next_group;
    }
    const std::size_t group_end = next_group;  // one past last data bucket
    if (match) {
      bool hit_in_group = false;
      for (std::size_t d = i + 1; d < group_end; ++d) {
        const auto data_bucket = view.bucket(d);
        t += data_bucket.size();
        result.tuning_time += data_bucket.size();
        ++result.probes;
        const Record& record =
            dataset.record(static_cast<int>(data_bucket.record_id()));
        if (record.key == key) {
          result.found = true;
          hit_in_group = true;
          break;
        }
      }
      if (result.found) break;
      if (!hit_in_group) ++result.false_drops;
    }
    if (scanned + 1 == num_groups) break;  // cycle sifted: not on air
    const Bytes next_phase =
        next_group < num ? view.start_phase(next_group) : 0;
    t = view.NextArrivalOfPhase(next_phase, t);
    i = view.BucketAtPhase(next_phase);
  }
  result.access_time = t - tune_in;
  return result;
}

}  // namespace

AccessResult IntegratedSignatureIndexing::Access(std::string_view key,
                                                 Bytes tune_in) const {
  if (const ArenaChannelView* arena = arena_walk_.view_or_null()) {
    return IntegratedWalk(*arena, key, tune_in, *dataset_, generator_,
                          group_size_);
  }
  return IntegratedWalk(PointerChannelView(channel_), key, tune_in, *dataset_,
                        generator_, group_size_);
}

Result<IntegratedSignatureIndexing> IntegratedSignatureIndexing::Restore(
    std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
    SignatureParams params, Channel channel, int group_size) {
  if (dataset == nullptr || dataset->size() == 0) {
    return Status::InvalidArgument(
        "integrated signature restore needs a non-empty dataset");
  }
  if (group_size < 1) {
    return Status::InvalidArgument(
        "integrated signature restore: group_size must be >= 1");
  }
  SignatureGenerator generator(
      ResolveGroupSignatureBytes(geometry, params, group_size), params);
  return IntegratedSignatureIndexing(std::move(dataset), generator,
                                     std::move(channel), group_size);
}

}  // namespace airindex
