#include "schemes/trace.h"

#include <iomanip>

namespace airindex {

const char* ProbeActionToString(ProbeAction action) {
  switch (action) {
    case ProbeAction::kInitialWait:
      return "initial-wait";
    case ProbeAction::kRead:
      return "read";
    case ProbeAction::kDoze:
      return "doze";
    case ProbeAction::kDownload:
      return "download";
    case ProbeAction::kRestart:
      return "restart";
    case ProbeAction::kClimb:
      return "climb";
    case ProbeAction::kConclude:
      return "conclude";
  }
  return "unknown";
}

void PrintTrace(const AccessTrace& trace, const Channel& channel,
                std::ostream& os) {
  for (const ProbeEvent& event : trace) {
    os << "t=" << std::setw(10) << event.at << "  " << std::setw(12)
       << ProbeActionToString(event.action) << "  +" << std::setw(8)
       << event.duration;
    if (event.bucket < channel.num_buckets()) {
      const Bucket& bucket = channel.bucket(event.bucket);
      os << "  bucket " << std::setw(6) << event.bucket << " ("
         << BucketKindToString(bucket.kind);
      if (bucket.kind == BucketKind::kIndex) {
        os << " L" << bucket.level;
      }
      if (bucket.record_id >= 0) {
        os << " rec=" << bucket.record_id;
      }
      os << ")";
    }
    if (!event.note.empty()) os << "  " << event.note;
    os << '\n';
  }
}

}  // namespace airindex
