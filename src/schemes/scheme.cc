#include "schemes/scheme.h"

#include <utility>

#include "schemes/broadcast_disks.h"
#include "schemes/distributed.h"
#include "schemes/flat.h"
#include "schemes/hashing.h"
#include "schemes/hybrid.h"
#include "schemes/integrated_signature.h"
#include "schemes/multilevel_signature.h"
#include "schemes/one_m.h"

namespace airindex {

const char* SchemeKindToString(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kFlat:
      return "flat broadcast";
    case SchemeKind::kOneM:
      return "(1,m) indexing";
    case SchemeKind::kDistributed:
      return "distributed indexing";
    case SchemeKind::kHashing:
      return "simple hashing";
    case SchemeKind::kSignature:
      return "signature indexing";
    case SchemeKind::kIntegratedSignature:
      return "integrated signature";
    case SchemeKind::kMultiLevelSignature:
      return "multi-level signature";
    case SchemeKind::kBroadcastDisks:
      return "broadcast disks";
    case SchemeKind::kHybrid:
      return "hybrid index+signature";
  }
  return "unknown";
}

namespace {

template <typename T>
Result<std::unique_ptr<BroadcastScheme>> Wrap(Result<T> built) {
  if (!built.ok()) return built.status();
  return std::unique_ptr<BroadcastScheme>(
      std::make_unique<T>(std::move(built).value()));
}

}  // namespace

Result<std::unique_ptr<BroadcastScheme>> BuildScheme(
    SchemeKind kind, std::shared_ptr<const Dataset> dataset,
    const BucketGeometry& geometry, const SchemeParams& params) {
  SignatureParams signature_params;
  signature_params.bits_per_attribute = params.signature_bits_per_attribute;
  switch (kind) {
    case SchemeKind::kFlat:
      return Wrap(FlatBroadcast::Build(std::move(dataset), geometry));
    case SchemeKind::kOneM:
      return Wrap(
          OneMIndexing::Build(std::move(dataset), geometry, params.one_m_m));
    case SchemeKind::kDistributed:
      return Wrap(DistributedIndexing::Build(std::move(dataset), geometry,
                                             params.distributed_r));
    case SchemeKind::kHashing:
      return Wrap(SimpleHashing::Build(std::move(dataset), geometry,
                                       params.hashing_allocation_factor));
    case SchemeKind::kSignature:
      return Wrap(SignatureIndexing::Build(std::move(dataset), geometry,
                                           signature_params));
    case SchemeKind::kIntegratedSignature:
      return Wrap(IntegratedSignatureIndexing::Build(
          std::move(dataset), geometry, signature_params,
          params.signature_group_size));
    case SchemeKind::kMultiLevelSignature:
      return Wrap(MultiLevelSignatureIndexing::Build(
          std::move(dataset), geometry, signature_params,
          params.signature_group_size));
    case SchemeKind::kBroadcastDisks:
      return Wrap(BroadcastDisks::Build(std::move(dataset), geometry,
                                        params.broadcast_disks));
    case SchemeKind::kHybrid:
      return Wrap(HybridIndexing::Build(std::move(dataset), geometry,
                                        signature_params,
                                        params.signature_group_size,
                                        params.hybrid_m));
  }
  return Status::InvalidArgument("unknown scheme kind");
}

}  // namespace airindex
