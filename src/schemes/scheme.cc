#include "schemes/scheme.h"

#include <utility>

#include "schemes/broadcast_disks.h"
#include "schemes/distributed.h"
#include "schemes/flat.h"
#include "schemes/hashing.h"
#include "schemes/hybrid.h"
#include "schemes/integrated_signature.h"
#include "schemes/multilevel_signature.h"
#include "schemes/one_m.h"
#include "schemes/scheduled.h"

namespace airindex {

const char* SchemeKindToString(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kFlat:
      return "flat broadcast";
    case SchemeKind::kOneM:
      return "(1,m) indexing";
    case SchemeKind::kDistributed:
      return "distributed indexing";
    case SchemeKind::kHashing:
      return "simple hashing";
    case SchemeKind::kSignature:
      return "signature indexing";
    case SchemeKind::kIntegratedSignature:
      return "integrated signature";
    case SchemeKind::kMultiLevelSignature:
      return "multi-level signature";
    case SchemeKind::kBroadcastDisks:
      return "broadcast disks";
    case SchemeKind::kHybrid:
      return "hybrid index+signature";
  }
  return "unknown";
}

namespace {

template <typename T>
Result<std::unique_ptr<BroadcastScheme>> Wrap(Result<T> built) {
  if (!built.ok()) return built.status();
  return std::unique_ptr<BroadcastScheme>(
      std::make_unique<T>(std::move(built).value()));
}

/// Keep-alive decorator for restored schemes: the inflated channel's key
/// views point into the arena's string pool, so the arena must outlive
/// the scheme. Member order matters — arena_ is declared first so it is
/// destroyed after inner_.
class ArenaBackedScheme : public BroadcastScheme {
 public:
  ArenaBackedScheme(std::shared_ptr<const ProgramArena> arena,
                    std::unique_ptr<BroadcastScheme> inner)
      : arena_(std::move(arena)), inner_(std::move(inner)) {}

  const Channel& channel() const override { return inner_->channel(); }
  AccessResult Access(std::string_view key, Bytes tune_in) const override {
    return inner_->Access(key, tune_in);
  }
  const char* name() const override { return inner_->name(); }
  void AttachArena(std::shared_ptr<const ProgramArena> arena) override {
    inner_->AttachArena(std::move(arena));
  }

  /// The wrapped concrete scheme — FlattenSchemeProgram unwraps through
  /// this so a restored scheme can be re-flattened.
  const BroadcastScheme& inner() const { return *inner_; }

 private:
  std::shared_ptr<const ProgramArena> arena_;
  std::unique_ptr<BroadcastScheme> inner_;
};

SignatureParams SignatureParamsOf(const SchemeParams& params) {
  SignatureParams signature_params;
  signature_params.bits_per_attribute = params.signature_bits_per_attribute;
  return signature_params;
}

}  // namespace

Result<std::unique_ptr<BroadcastScheme>> BuildScheme(
    SchemeKind kind, std::shared_ptr<const Dataset> dataset,
    const BucketGeometry& geometry, const SchemeParams& params) {
  SignatureParams signature_params;
  signature_params.bits_per_attribute = params.signature_bits_per_attribute;
  Result<std::unique_ptr<BroadcastScheme>> built =
      Status::InvalidArgument("unknown scheme kind");
  if (params.schedule.active()) {
    // An active scheduler reroutes every kind through the skew-aware
    // scheduled program, which reuses the kind's index family over the
    // square-root-rule slot schedule.
    built =
        Wrap(ScheduledBroadcast::Build(kind, std::move(dataset), geometry,
                                       params));
    if (!built.ok()) return built;
    Result<ProgramArena> arena = FlattenSchemeProgram(
        kind, *built.value(), /*dataset_fingerprint=*/0,
        /*params_fingerprint=*/0);
    if (arena.ok()) {
      built.value()->AttachArena(
          std::make_shared<const ProgramArena>(std::move(arena).value()));
    }
    return built;
  }
  switch (kind) {
    case SchemeKind::kFlat:
      built = Wrap(FlatBroadcast::Build(std::move(dataset), geometry));
      break;
    case SchemeKind::kOneM:
      built = Wrap(
          OneMIndexing::Build(std::move(dataset), geometry, params.one_m_m));
      break;
    case SchemeKind::kDistributed:
      built = Wrap(DistributedIndexing::Build(std::move(dataset), geometry,
                                              params.distributed_r));
      break;
    case SchemeKind::kHashing:
      built = Wrap(SimpleHashing::Build(std::move(dataset), geometry,
                                        params.hashing_allocation_factor));
      break;
    case SchemeKind::kSignature:
      built = Wrap(SignatureIndexing::Build(std::move(dataset), geometry,
                                            signature_params));
      break;
    case SchemeKind::kIntegratedSignature:
      built = Wrap(IntegratedSignatureIndexing::Build(
          std::move(dataset), geometry, signature_params,
          params.signature_group_size));
      break;
    case SchemeKind::kMultiLevelSignature:
      built = Wrap(MultiLevelSignatureIndexing::Build(
          std::move(dataset), geometry, signature_params,
          params.signature_group_size));
      break;
    case SchemeKind::kBroadcastDisks:
      built = Wrap(BroadcastDisks::Build(std::move(dataset), geometry,
                                         params.broadcast_disks));
      break;
    case SchemeKind::kHybrid:
      built = Wrap(HybridIndexing::Build(std::move(dataset), geometry,
                                         signature_params,
                                         params.signature_group_size,
                                         params.hybrid_m));
      break;
  }
  if (!built.ok()) return built;
  // Offer the scheme its flattened program so Access() runs arena-native
  // (schemes/channel_view.h). The fingerprints are irrelevant here — the
  // arena never leaves this process — and a flatten failure just leaves
  // the scheme on its pointer walk.
  Result<ProgramArena> arena =
      FlattenSchemeProgram(kind, *built.value(), /*dataset_fingerprint=*/0,
                           /*params_fingerprint=*/0);
  if (arena.ok()) {
    built.value()->AttachArena(
        std::make_shared<const ProgramArena>(std::move(arena).value()));
  }
  return built;
}

Result<ProgramArena> FlattenSchemeProgram(SchemeKind kind,
                                          const BroadcastScheme& scheme,
                                          std::uint64_t dataset_fingerprint,
                                          std::uint64_t params_fingerprint) {
  // A restored scheme arrives wrapped in its arena keep-alive decorator;
  // flatten the concrete scheme inside it.
  if (const auto* wrapped = dynamic_cast<const ArenaBackedScheme*>(&scheme)) {
    return FlattenSchemeProgram(kind, wrapped->inner(), dataset_fingerprint,
                                params_fingerprint);
  }
  // A scheduled program flattens its resolved assignment instead of the
  // base kind's scalars; kAuxTag keeps the two aux layouts unmistakable.
  if (const auto* scheduled = dynamic_cast<const ScheduledBroadcast*>(&scheme)) {
    const std::vector<int>& order = scheduled->assignment().record_order;
    for (std::size_t p = 0; p < order.size(); ++p) {
      if (order[p] != static_cast<int>(p)) {
        return Status::InvalidArgument(
            "flatten: online-evolved scheduled programs are not cacheable");
      }
    }
    return ProgramArena::Flatten({&scheme.channel()}, /*switch_cost_bytes=*/0,
                                 static_cast<int>(kind), dataset_fingerprint,
                                 params_fingerprint, scheduled->FlattenAux());
  }
  // Aux layout per kind (see RestoreSchemeFromArena, which consumes it):
  // the scheme's *resolved* scalars — values Build may have derived from
  // "auto" params (m* rules, optimal r, rounded slot counts) that the
  // restore path must not re-derive differently.
  std::vector<std::int64_t> aux;
  switch (kind) {
    case SchemeKind::kFlat:
    case SchemeKind::kSignature:
    case SchemeKind::kBroadcastDisks:
      break;  // fully reconstructible from dataset + params + channel
    case SchemeKind::kOneM: {
      const auto* one_m = dynamic_cast<const OneMIndexing*>(&scheme);
      if (one_m == nullptr) break;
      aux = {one_m->m()};
      break;
    }
    case SchemeKind::kDistributed: {
      const auto* distributed =
          dynamic_cast<const DistributedIndexing*>(&scheme);
      if (distributed == nullptr) break;
      aux = {distributed->replicated_levels(), distributed->num_segments()};
      break;
    }
    case SchemeKind::kHashing: {
      const auto* hashing = dynamic_cast<const SimpleHashing*>(&scheme);
      if (hashing == nullptr) break;
      aux = {hashing->allocated()};
      break;
    }
    case SchemeKind::kIntegratedSignature: {
      const auto* integrated =
          dynamic_cast<const IntegratedSignatureIndexing*>(&scheme);
      if (integrated == nullptr) break;
      aux = {integrated->group_size()};
      break;
    }
    case SchemeKind::kMultiLevelSignature: {
      const auto* multilevel =
          dynamic_cast<const MultiLevelSignatureIndexing*>(&scheme);
      if (multilevel == nullptr) break;
      aux = {multilevel->group_size()};
      break;
    }
    case SchemeKind::kHybrid: {
      const auto* hybrid = dynamic_cast<const HybridIndexing*>(&scheme);
      if (hybrid == nullptr) break;
      aux = {hybrid->group_size(), hybrid->m()};
      break;
    }
  }
  // Kinds with scalars must have matched their concrete type above.
  const bool needs_aux =
      kind != SchemeKind::kFlat && kind != SchemeKind::kSignature &&
      kind != SchemeKind::kBroadcastDisks;
  if (needs_aux && aux.empty()) {
    return Status::InvalidArgument(
        std::string("flatten: scheme is not a ") + SchemeKindToString(kind));
  }
  return ProgramArena::Flatten({&scheme.channel()}, /*switch_cost_bytes=*/0,
                               static_cast<int>(kind), dataset_fingerprint,
                               params_fingerprint, aux);
}

Result<std::unique_ptr<BroadcastScheme>> RestoreSchemeFromArena(
    std::shared_ptr<const ProgramArena> arena,
    std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
    const SchemeParams& params) {
  if (arena == nullptr) {
    return Status::InvalidArgument("restore: null arena");
  }
  if (arena->num_channels() != 1) {
    return Status::InvalidArgument(
        "restore: scheme programs are single-channel, arena carries " +
        std::to_string(arena->num_channels()));
  }
  const int kind_int = arena->scheme_kind();
  if (kind_int < static_cast<int>(SchemeKind::kFlat) ||
      kind_int > static_cast<int>(SchemeKind::kHybrid)) {
    return Status::InvalidArgument("restore: arena has no valid scheme tag");
  }
  const SchemeKind kind = static_cast<SchemeKind>(kind_int);
  Result<std::vector<Channel>> channels = arena->InflateChannels();
  if (!channels.ok()) return channels.status();
  Channel channel = std::move(channels.value().front());
  const std::vector<std::int64_t> aux = arena->aux();
  const auto aux_int = [&aux](std::size_t i) {
    return static_cast<int>(aux[i]);
  };
  const auto check_aux = [&aux, kind](std::size_t want) -> Status {
    if (aux.size() != want) {
      return Status::InvalidArgument(
          std::string("restore: ") + SchemeKindToString(kind) + " expects " +
          std::to_string(want) + " aux scalars, arena carries " +
          std::to_string(aux.size()));
    }
    return Status::Ok();
  };

  Result<std::unique_ptr<BroadcastScheme>> inner =
      Status::InvalidArgument("unknown scheme kind");
  if (params.schedule.active()) {
    inner = Wrap(ScheduledBroadcast::Restore(kind, dataset, geometry, params,
                                             std::move(channel), aux));
    if (!inner.ok()) return inner.status();
    inner.value()->AttachArena(arena);
    return std::unique_ptr<BroadcastScheme>(
        std::make_unique<ArenaBackedScheme>(std::move(arena),
                                            std::move(inner).value()));
  }
  switch (kind) {
    case SchemeKind::kFlat: {
      Status s = check_aux(0);
      if (!s.ok()) return s;
      inner = Wrap(FlatBroadcast::Restore(dataset, std::move(channel)));
      break;
    }
    case SchemeKind::kOneM: {
      Status s = check_aux(1);
      if (!s.ok()) return s;
      inner = Wrap(OneMIndexing::Restore(dataset, geometry, std::move(channel),
                                         aux_int(0)));
      break;
    }
    case SchemeKind::kDistributed: {
      Status s = check_aux(2);
      if (!s.ok()) return s;
      inner = Wrap(DistributedIndexing::Restore(
          dataset, geometry, std::move(channel), aux_int(0), aux_int(1)));
      break;
    }
    case SchemeKind::kHashing: {
      Status s = check_aux(1);
      if (!s.ok()) return s;
      inner =
          Wrap(SimpleHashing::Restore(dataset, std::move(channel), aux_int(0)));
      break;
    }
    case SchemeKind::kSignature: {
      Status s = check_aux(0);
      if (!s.ok()) return s;
      inner = Wrap(SignatureIndexing::Restore(
          dataset, geometry, SignatureParamsOf(params), std::move(channel)));
      break;
    }
    case SchemeKind::kIntegratedSignature: {
      Status s = check_aux(1);
      if (!s.ok()) return s;
      inner = Wrap(IntegratedSignatureIndexing::Restore(
          dataset, geometry, SignatureParamsOf(params), std::move(channel),
          aux_int(0)));
      break;
    }
    case SchemeKind::kMultiLevelSignature: {
      Status s = check_aux(1);
      if (!s.ok()) return s;
      inner = Wrap(MultiLevelSignatureIndexing::Restore(
          dataset, geometry, SignatureParamsOf(params), std::move(channel),
          aux_int(0)));
      break;
    }
    case SchemeKind::kBroadcastDisks: {
      Status s = check_aux(0);
      if (!s.ok()) return s;
      inner = Wrap(BroadcastDisks::Restore(dataset, params.broadcast_disks,
                                           std::move(channel)));
      break;
    }
    case SchemeKind::kHybrid: {
      Status s = check_aux(2);
      if (!s.ok()) return s;
      inner = Wrap(HybridIndexing::Restore(dataset, geometry,
                                           SignatureParamsOf(params),
                                           std::move(channel), aux_int(0),
                                           aux_int(1)));
      break;
    }
  }
  if (!inner.ok()) return inner.status();
  // The loaded arena doubles as the walk surface: attach it before
  // wrapping so Access() runs arena-native on restored schemes too.
  inner.value()->AttachArena(arena);
  return std::unique_ptr<BroadcastScheme>(std::make_unique<ArenaBackedScheme>(
      std::move(arena), std::move(inner).value()));
}

}  // namespace airindex
