#ifndef AIRINDEX_SCHEMES_ENTRY_SEARCH_H_
#define AIRINDEX_SCHEMES_ENTRY_SEARCH_H_

#include <algorithm>
#include <string_view>
#include <vector>

#include "broadcast/bucket.h"

namespace airindex {

/// Finds the entry whose [key_lo, key_hi] range covers `key`, or nullptr.
/// Entries must be sorted by key range (as all builders emit them).
/// Every probe compares string_views into dataset storage — no owned
/// strings, no allocation, just fixed-width memcmp-style comparisons.
inline const PointerEntry* FindCoveringEntry(
    const std::vector<PointerEntry>& entries, std::string_view key) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const PointerEntry& e, std::string_view k) { return e.key_hi < k; });
  if (it == entries.end() || it->key_lo > key) return nullptr;
  return &*it;
}

}  // namespace airindex

#endif  // AIRINDEX_SCHEMES_ENTRY_SEARCH_H_
