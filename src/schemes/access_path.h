// Layer: 4 (schemes) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_SCHEMES_ACCESS_PATH_H_
#define AIRINDEX_SCHEMES_ACCESS_PATH_H_

#include <atomic>

namespace airindex {

/// Which representation the client access walks traverse.
///
/// Every scheme's Access() is one protocol templated over a channel view
/// (schemes/channel_view.h): the *pointer* view walks the inflated
/// Channel/Bucket structures, the *arena* view resolves the same walk via
/// 32-bit offset arithmetic over the flattened program buffer
/// (broadcast/arena.h). Both views are observably identical — the
/// invariants harness shadows every walk on both — so the switch only
/// trades implementation speed, never results.
enum class AccessPath {
  /// Offset arithmetic over the contiguous arena buffer (default).
  kArena,
  /// The original pointer-chasing walk over Channel/Bucket.
  kPointer,
};

namespace internal {
inline std::atomic<AccessPath> g_access_path{AccessPath::kArena};
}  // namespace internal

/// Process-wide selection; schemes without an attached arena always use
/// the pointer walk regardless.
inline void SetGlobalAccessPath(AccessPath path) {
  internal::g_access_path.store(path, std::memory_order_relaxed);
}

inline AccessPath GlobalAccessPath() {
  return internal::g_access_path.load(std::memory_order_relaxed);
}

/// True when arena-native walks are enabled.
inline bool UseArenaAccessPath() {
  return GlobalAccessPath() == AccessPath::kArena;
}

/// RAII override, for micro-benchmarks and the A/B invariant tests.
class ScopedAccessPath {
 public:
  explicit ScopedAccessPath(AccessPath path) : previous_(GlobalAccessPath()) {
    SetGlobalAccessPath(path);
  }
  ~ScopedAccessPath() { SetGlobalAccessPath(previous_); }

  ScopedAccessPath(const ScopedAccessPath&) = delete;
  ScopedAccessPath& operator=(const ScopedAccessPath&) = delete;

 private:
  AccessPath previous_;
};

}  // namespace airindex

#endif  // AIRINDEX_SCHEMES_ACCESS_PATH_H_
