#ifndef AIRINDEX_SCHEMES_SIGNATURE_H_
#define AIRINDEX_SCHEMES_SIGNATURE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "broadcast/channel.h"
#include "broadcast/geometry.h"
#include "data/dataset.h"
#include "schemes/access.h"
#include "schemes/channel_view.h"
#include "schemes/filter.h"

namespace airindex {

/// Parameters of the superimposed-coding signature generator.
struct SignatureParams {
  /// Bits set per attribute value (the classic "weight" parameter).
  int bits_per_attribute = 8;
  /// Width of *group* signatures (integrated / multi-level schemes), in
  /// bytes. A group signature superimposes every member record's fields,
  /// so it must be wider than a record signature or it saturates; 0 means
  /// auto: signature_bytes * max(1, group_size / 4).
  Bytes group_signature_bytes = 0;
};

/// Generates record and query signatures.
///
/// A record signature superimposes (ORs) the bit strings of the key and
/// every attribute, each attribute hashing to `bits_per_attribute` bit
/// positions of a (signature_bytes * 8)-bit string — exactly the paper's
/// "hashing each field of a record into a random bit string and then
/// superimposing together all the bit strings" (Section 2.3).
///
/// A query on the primary key contributes only the key's bit string; a
/// record *matches* when its signature covers every query bit. A match
/// whose record does not actually carry the key is a false drop.
class SignatureGenerator {
 public:
  /// Generator over (signature_bytes * 8)-bit strings.
  SignatureGenerator(Bytes signature_bytes, SignatureParams params);

  /// Convenience: uses geometry.signature_bytes.
  SignatureGenerator(const BucketGeometry& geometry, SignatureParams params);

  /// Width of the generated signatures in bytes.
  Bytes signature_bytes() const { return signature_bytes_; }

  /// Number of 64-bit words per signature.
  int words() const { return words_; }

  /// Full record signature (key + all attributes superimposed).
  std::vector<std::uint64_t> RecordSignature(const Record& record) const;

  /// Query signature for a primary-key lookup.
  std::vector<std::uint64_t> QuerySignature(std::string_view key) const;

  /// True when `record_sig` covers every bit of `query_sig`.
  static bool Matches(const std::uint64_t* record_sig,
                      const std::uint64_t* query_sig, int words);

 private:
  void SuperimposeField(std::string_view value,
                        std::vector<std::uint64_t>* sig) const;

  Bytes signature_bytes_;
  int words_;
  int bits_;
  SignatureParams params_;
};

/// The group-signature width used by the integrated and multi-level
/// schemes: params.group_signature_bytes, or the auto rule when 0.
Bytes ResolveGroupSignatureBytes(const BucketGeometry& geometry,
                                 const SignatureParams& params,
                                 int group_size);

/// Simple signature indexing (Lee & Lee; paper Section 2.3).
///
/// The cycle alternates a signature bucket (It bytes) and the data bucket
/// it abstracts (Dt bytes). A client sifts through every signature
/// bucket, dozing over the data bucket unless the signature matches; a
/// matching signature triggers a download, which is either the requested
/// record or a false drop.
class SignatureIndexing : public BroadcastScheme {
 public:
  static Result<SignatureIndexing> Build(
      std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
      SignatureParams params = SignatureParams());

  /// Reattaches a channel inflated from a program arena. The packed
  /// signature table is recovered from the channel's signature buckets
  /// (each carries its record's full signature), so no rehashing runs.
  static Result<SignatureIndexing> Restore(
      std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
      SignatureParams params, Channel channel);

  const Channel& channel() const override { return channel_; }
  const char* name() const override { return "signature indexing"; }

  /// Closed-form protocol walk: O(range words) via the packed signature
  /// table instead of bucket-by-bucket simulation.
  AccessResult Access(std::string_view key, Bytes tune_in) const override;

  /// Bucket-by-bucket reference implementation (property tests).
  AccessResult AccessReference(std::string_view key, Bytes tune_in) const;

  /// Attribute filtering — the capability signatures exist for: collect
  /// every record whose attributes carry `value`, sifting one full cycle
  /// of signatures and downloading only the matches (plus false drops).
  /// B+-tree air indexes cannot serve such queries at all; the flat
  /// baseline must listen to the entire cycle.
  FilterResult Filter(std::string_view value, Bytes tune_in) const;

  /// Measured per-record false-drop probability for key queries: the
  /// fraction of (query key, other record) pairs that match. Computed by
  /// sampling; feeds the analytical model.
  double MeasureFalseDropRate(int sample_queries, std::uint64_t seed) const;

  const SignatureGenerator& generator() const { return generator_; }

  /// The arena walk scans the arena's signature word pool, whose layout
  /// for this alternating sig/data cycle equals the packed table.
  void AttachArena(std::shared_ptr<const ProgramArena> arena) override {
    arena_walk_.Attach(std::move(arena), channel_);
  }

 private:
  SignatureIndexing(std::shared_ptr<const Dataset> dataset,
                    SignatureGenerator generator, Channel channel,
                    std::vector<std::uint64_t> packed_signatures);

  /// Matches of `query` among the `count` records starting at key-order
  /// position `first` (circular).
  int CountMatches(const std::uint64_t* query, int first, int count) const;

  std::shared_ptr<const Dataset> dataset_;
  SignatureGenerator generator_;
  Channel channel_;
  /// Record signatures packed row-major: words() per record.
  std::vector<std::uint64_t> packed_;
  ArenaWalkSupport arena_walk_;
};

}  // namespace airindex

#endif  // AIRINDEX_SCHEMES_SIGNATURE_H_
