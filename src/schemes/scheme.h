// Layer: 4 (schemes) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_SCHEMES_SCHEME_H_
#define AIRINDEX_SCHEMES_SCHEME_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "broadcast/arena.h"
#include "broadcast/geometry.h"
#include "broadcast/schedule.h"
#include "data/dataset.h"
#include "schemes/access.h"
#include "schemes/broadcast_disks.h"
#include "schemes/signature.h"

namespace airindex {

/// The data access methods the testbed can evaluate.
enum class SchemeKind {
  kFlat,
  kOneM,
  kDistributed,
  kHashing,
  kSignature,
  kIntegratedSignature,
  kMultiLevelSignature,
  kBroadcastDisks,
  kHybrid,
};

/// Short display name ("flat broadcast", "(1,m) indexing", ...).
const char* SchemeKindToString(SchemeKind kind);

/// Per-scheme tuning knobs; defaults reproduce the paper's setup
/// ("optimal" parameters where the paper says it used them).
struct SchemeParams {
  /// (1,m): index replication count; 0 = optimal m*.
  int one_m_m = 0;
  /// Distributed: replicated levels; -1 = access-optimal r.
  int distributed_r = -1;
  /// Hashing: Na = round(factor * Nr).
  double hashing_allocation_factor = 1.0;
  /// Signature family: bits set per attribute.
  int signature_bits_per_attribute = 8;
  /// Integrated/multi-level signature: records per signature group.
  int signature_group_size = 16;
  /// Broadcast disks: disk layout and relative frequencies.
  BroadcastDisksParams broadcast_disks;
  /// Hybrid index+signature: tree replication count (0 = sqrt rule).
  int hybrid_m = 0;
  /// Slot scheduler (broadcast/schedule.h). kFlat — the default — keeps
  /// every scheme's committed layout untouched; kSquareRoot/kOnline route
  /// the build through the skew-aware scheduled program
  /// (schemes/scheduled.h) with this scheme kind's index family.
  ScheduleParams schedule;
};

/// Builds a ready-to-query broadcast program for `kind` over `dataset`.
Result<std::unique_ptr<BroadcastScheme>> BuildScheme(
    SchemeKind kind, std::shared_ptr<const Dataset> dataset,
    const BucketGeometry& geometry, const SchemeParams& params = {});

/// Flattens a built single-channel scheme program into one relocatable
/// arena buffer: the channel's buckets plus the scheme's resolved
/// scalars (its aux section), tagged with `kind` and the two cache
/// fingerprints. `scheme` must be the concrete scheme BuildScheme(kind,
/// ...) produced — a kind mismatch is an InvalidArgument, not UB.
Result<ProgramArena> FlattenSchemeProgram(SchemeKind kind,
                                          const BroadcastScheme& scheme,
                                          std::uint64_t dataset_fingerprint,
                                          std::uint64_t params_fingerprint);

/// Rebuilds a ready-to-query scheme from a flattened arena without
/// re-running the channel construction: the channel is inflated from the
/// arena (bucket key views point into the arena's string pool — the
/// returned scheme co-owns `arena` to keep them alive) and cheap
/// deterministic auxiliaries (index trees, signature generators, packed
/// signature tables, occurrence maps) are reconstructed from `dataset`,
/// `geometry`, `params` and the arena's aux scalars. Observably
/// identical to the freshly built scheme: every Access() walk returns
/// the same result, so simulation output stays bit-identical.
Result<std::unique_ptr<BroadcastScheme>> RestoreSchemeFromArena(
    std::shared_ptr<const ProgramArena> arena,
    std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
    const SchemeParams& params);

}  // namespace airindex

#endif  // AIRINDEX_SCHEMES_SCHEME_H_
