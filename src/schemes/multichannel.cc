#include "schemes/multichannel.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "des/random.h"
#include "schemes/entry_search.h"
#include "schemes/scheduled.h"

namespace airindex {

namespace {

/// Salt for the start-channel hash so it is uncorrelated with the
/// simple-hashing scheme's use of Mix64 on tune-in-adjacent values.
constexpr std::uint64_t kStartChannelSalt = 0x5eed0c4a17b0ca57ULL;

/// Record range [begin, end) of partition p when Nr records are split
/// into P balanced chunks.
std::pair<int, int> PartitionRange(int num_records, int partitions, int p) {
  const auto lo = static_cast<int>(static_cast<std::int64_t>(p) * num_records /
                                   partitions);
  const auto hi = static_cast<int>(
      (static_cast<std::int64_t>(p) + 1) * num_records / partitions);
  return {lo, hi};
}

// --- conflict-aware placement ------------------------------------------
//
// Channels tick the same byte clock, so bucket index x of a channel with
// M_a buckets and bucket index y of one with M_b buckets share a
// slot-time at some instant iff x ≡ y (mod gcd(M_a, M_b)) — the CRT
// residue test. The placer rotates each partition's whole bucket
// sequence (ScheduleParams::rotation_slots) so the hottest records of
// different channels never collide when a collision-free rotation
// exists.

/// Hot-record occurrence slots of one already-placed channel.
struct PlacedHotSlots {
  int num_buckets = 0;
  std::vector<int> slots;
};

/// Cross-channel hot-pair collisions of candidate rotation `rotation`
/// for a channel of `num_buckets` buckets whose canonical (unrotated)
/// hot occurrences are `hot`.
std::int64_t RotationCollisions(const std::vector<int>& hot, int num_buckets,
                                int rotation,
                                const std::vector<PlacedHotSlots>& placed) {
  std::int64_t collisions = 0;
  for (const PlacedHotSlots& other : placed) {
    const int g = std::gcd(num_buckets, other.num_buckets);
    for (const int x : hot) {
      const int residue = ((x - rotation) % g + g) % g;
      for (const int y : other.slots) {
        if (residue == y % g) ++collisions;
      }
    }
  }
  return collisions;
}

/// Smallest rotation minimizing hot-pair collisions. Only rotation
/// residues modulo lcm over placed channels of gcd(M, M_other) are
/// distinguishable, so the scan stops there (capped for safety; the cap
/// is never reached for balanced partitions, where all cycles are within
/// one bucket of each other).
int BestRotation(const std::vector<int>& hot, int num_buckets,
                 const std::vector<PlacedHotSlots>& placed) {
  std::int64_t distinct = 1;
  for (const PlacedHotSlots& other : placed) {
    const std::int64_t g = std::gcd(num_buckets, other.num_buckets);
    distinct = std::min<std::int64_t>(distinct / std::gcd(distinct, g) * g,
                                      num_buckets);
  }
  distinct = std::min<std::int64_t>(distinct, 4096);
  int best_rotation = 0;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int rotation = 0; rotation < distinct; ++rotation) {
    const std::int64_t collisions =
        RotationCollisions(hot, num_buckets, rotation, placed);
    if (collisions < best) {
      best = collisions;
      best_rotation = rotation;
      if (best == 0) break;
    }
  }
  return best_rotation;
}

}  // namespace

const char* ChannelAllocationToString(ChannelAllocation allocation) {
  switch (allocation) {
    case ChannelAllocation::kIndexOnOne:
      return "index-on-one";
    case ChannelAllocation::kDataPartitioned:
      return "data-partitioned";
    case ChannelAllocation::kReplicatedIndex:
      return "replicated-index";
  }
  return "unknown";
}

bool ParseChannelAllocation(std::string_view text, ChannelAllocation* out) {
  for (const ChannelAllocation allocation :
       {ChannelAllocation::kIndexOnOne, ChannelAllocation::kDataPartitioned,
        ChannelAllocation::kReplicatedIndex}) {
    if (text == ChannelAllocationToString(allocation)) {
      *out = allocation;
      return true;
    }
  }
  return false;
}

Result<std::unique_ptr<MultiChannelProgram>> MultiChannelProgram::Build(
    SchemeKind kind, std::shared_ptr<const Dataset> dataset,
    const BucketGeometry& geometry, const SchemeParams& params,
    const MultiChannelParams& multichannel) {
  const int num_channels = multichannel.num_channels;
  if (num_channels < 2) {
    return Status::InvalidArgument(
        "multichannel program needs >= 2 channels (a single channel runs "
        "the base scheme directly)");
  }
  if (num_channels > 64) {
    return Status::InvalidArgument("more than 64 channels is unsupported");
  }
  if (multichannel.switch_cost_bytes < 0) {
    return Status::InvalidArgument("channel switch cost must be >= 0");
  }
  if (dataset == nullptr || dataset->size() == 0) {
    return Status::InvalidArgument("multichannel program needs a dataset");
  }
  const int num_records = dataset->size();
  if (params.schedule.active()) {
    // The index-centric allocations lay out one global air index whose
    // leaf pointers assume the flat per-partition slot order; a skewed
    // slot schedule under them is a different design, so they are gated
    // rather than silently served dangling pointers.
    if (multichannel.allocation != ChannelAllocation::kDataPartitioned) {
      return Status::InvalidArgument(
          "skew-aware scheduling supports only the data-partitioned "
          "multichannel allocation");
    }
    if (params.schedule.scheduler == SchedulerKind::kOnline) {
      return Status::InvalidArgument(
          "online re-tiering requires a single channel");
    }
  }
  const int partitions =
      multichannel.allocation == ChannelAllocation::kIndexOnOne
          ? num_channels - 1
          : num_channels;
  if (num_records < partitions) {
    return Status::InvalidArgument(
        "fewer records than data partitions; reduce --channels");
  }

  auto program = std::unique_ptr<MultiChannelProgram>(new MultiChannelProgram);
  program->allocation_ = multichannel.allocation;
  program->first_data_channel_ =
      multichannel.allocation == ChannelAllocation::kIndexOnOne ? 1 : 0;
  program->partition_first_keys_.reserve(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    const auto [lo, hi] = PartitionRange(num_records, partitions, p);
    (void)hi;
    program->partition_first_keys_.push_back(dataset->record(lo).key);
  }

  const Bytes bucket_bytes = geometry.data_bucket_bytes();
  std::vector<Channel> channels;
  channels.reserve(static_cast<std::size_t>(num_channels));

  if (multichannel.allocation == ChannelAllocation::kDataPartitioned) {
    program->name_ = std::string("multichannel data-partitioned over ") +
                     SchemeKindToString(kind);
    std::vector<PlacedHotSlots> placed;
    for (int p = 0; p < partitions; ++p) {
      const auto [lo, hi] = PartitionRange(num_records, partitions, p);
      std::vector<Record> chunk(dataset->records().begin() + lo,
                                dataset->records().begin() + hi);
      Result<Dataset> sub = Dataset::FromRecords(std::move(chunk));
      if (!sub.ok()) return sub.status();
      auto sub_dataset = std::make_shared<const Dataset>(std::move(sub).value());
      // A scheduled partition plans its slice under the *conditional*
      // global popularity (rank_offset/total_ranks), not a fresh local
      // Zipf — record lo really is the lo-th hottest of the whole
      // population.
      SchemeParams partition_params = params;
      if (params.schedule.active()) {
        partition_params.schedule.rank_offset = lo;
        partition_params.schedule.total_ranks = num_records;
        partition_params.schedule.rotation_slots = 0;
      }
      Result<std::unique_ptr<BroadcastScheme>> scheme =
          BuildScheme(kind, sub_dataset, geometry, partition_params);
      if (!scheme.ok()) return scheme.status();
      if (params.schedule.active()) {
        const auto* scheduled =
            dynamic_cast<const ScheduledBroadcast*>(scheme.value().get());
        if (scheduled == nullptr) {
          return Status::InvalidArgument(
              "scheduled partition did not produce a scheduled program");
        }
        // Conflict-aware placement over this partition's hottest records
        // (its first locals — the slice is in rank order): pick the
        // rotation whose hot occurrences collide least with every
        // already-placed channel, then rebuild on it. The search and the
        // rebuild are deterministic, so --jobs bit-identity holds.
        const int hot_records = std::min(2, hi - lo);
        std::vector<int> hot;
        for (int r = 0; r < hot_records; ++r) {
          const std::vector<int>& buckets = scheduled->record_buckets()[
              static_cast<std::size_t>(r)];
          hot.insert(hot.end(), buckets.begin(), buckets.end());
        }
        const int channel_buckets =
            static_cast<int>(scheduled->channel().num_buckets());
        for (const PlacedHotSlots& other : placed) {
          program->conflict_.hot_pairs +=
              static_cast<std::int64_t>(hot.size()) *
              static_cast<std::int64_t>(other.slots.size());
        }
        program->conflict_.baseline_collisions +=
            RotationCollisions(hot, channel_buckets, 0, placed);
        const int rotation = BestRotation(hot, channel_buckets, placed);
        program->conflict_.collisions +=
            RotationCollisions(hot, channel_buckets, rotation, placed);
        program->conflict_.rotations.push_back(rotation);
        if (rotation != 0) {
          partition_params.schedule.rotation_slots = rotation;
          scheme = BuildScheme(kind, sub_dataset, geometry, partition_params);
          if (!scheme.ok()) return scheme.status();
        }
        PlacedHotSlots mine;
        mine.num_buckets = channel_buckets;
        mine.slots.reserve(hot.size());
        for (const int x : hot) {
          mine.slots.push_back(((x - rotation) % channel_buckets +
                                channel_buckets) % channel_buckets);
        }
        placed.push_back(std::move(mine));
      }
      channels.push_back(scheme.value()->channel());
      program->partitions_.push_back(std::move(scheme).value());
    }
  } else {
    // Both index-centric allocations lay out the global B+-tree air
    // index themselves; the base kind only names the program.
    program->name_ =
        std::string("multichannel ") +
        ChannelAllocationToString(multichannel.allocation) + " over " +
        SchemeKindToString(kind);
    program->dataset_ = dataset;
    Result<BTree> tree_result =
        BTree::Build(num_records, geometry.index_fanout());
    if (!tree_result.ok()) return tree_result.status();
    program->tree_ = std::move(tree_result).value();
    const BTree& tree = *program->tree_;
    const std::vector<int> preorder = tree.PreorderSubtree(tree.root());
    const Bytes index_bytes =
        static_cast<Bytes>(preorder.size()) * bucket_bytes;

    // Phase of every index node within the (identical) index layout, and
    // the home channel + phase of every record's data bucket.
    std::vector<Bytes> node_phase(tree.nodes().size(), kInvalidPhase);
    for (std::size_t i = 0; i < preorder.size(); ++i) {
      node_phase[static_cast<std::size_t>(preorder[i])] =
          static_cast<Bytes>(i) * bucket_bytes;
    }
    std::vector<int> record_channel(static_cast<std::size_t>(num_records), 0);
    std::vector<Bytes> record_phase(static_cast<std::size_t>(num_records), 0);
    const Bytes data_base =
        multichannel.allocation == ChannelAllocation::kIndexOnOne
            ? 0
            : index_bytes;
    for (int p = 0; p < partitions; ++p) {
      const auto [lo, hi] = PartitionRange(num_records, partitions, p);
      for (int r = lo; r < hi; ++r) {
        record_channel[static_cast<std::size_t>(r)] =
            program->first_data_channel_ + p;
        record_phase[static_cast<std::size_t>(r)] =
            data_base + static_cast<Bytes>(r - lo) * bucket_bytes;
      }
    }

    // The index bucket sequence is identical on every channel that
    // carries it (leaf pointers are absolute channel+phase pairs).
    std::vector<Bucket> index_buckets;
    index_buckets.reserve(preorder.size());
    for (const int node_id : preorder) {
      const BTreeNode& node = tree.node(node_id);
      Bucket bucket;
      bucket.kind = BucketKind::kIndex;
      bucket.size = bucket_bytes;
      bucket.next_index_segment_phase = 0;
      bucket.level = node.level;
      bucket.range_lo = dataset->record(node.first_record).key;
      bucket.range_hi = dataset->record(node.last_record).key;
      bucket.local.reserve(node.children.size());
      for (const int child : node.children) {
        PointerEntry entry;
        if (node.level == 0) {
          entry.key_lo = dataset->record(child).key;
          entry.key_hi = entry.key_lo;
          entry.target_phase = record_phase[static_cast<std::size_t>(child)];
          entry.target_channel = record_channel[static_cast<std::size_t>(child)];
        } else {
          const BTreeNode& child_node = tree.node(child);
          entry.key_lo = dataset->record(child_node.first_record).key;
          entry.key_hi = dataset->record(child_node.last_record).key;
          entry.target_phase = node_phase[static_cast<std::size_t>(child)];
        }
        bucket.local.push_back(entry);
      }
      index_buckets.push_back(std::move(bucket));
    }

    const auto make_data_bucket = [&](int record_id) {
      Bucket bucket;
      bucket.kind = BucketKind::kData;
      bucket.size = bucket_bytes;
      bucket.record_id = record_id;
      bucket.next_index_segment_phase =
          multichannel.allocation == ChannelAllocation::kReplicatedIndex
              ? 0
              : kInvalidPhase;
      return bucket;
    };

    if (multichannel.allocation == ChannelAllocation::kIndexOnOne) {
      Result<Channel> index_channel = Channel::Create(index_buckets);
      if (!index_channel.ok()) return index_channel.status();
      channels.push_back(std::move(index_channel).value());
      for (int p = 0; p < partitions; ++p) {
        const auto [lo, hi] = PartitionRange(num_records, partitions, p);
        std::vector<Bucket> buckets;
        buckets.reserve(static_cast<std::size_t>(hi - lo));
        for (int r = lo; r < hi; ++r) buckets.push_back(make_data_bucket(r));
        Result<Channel> ch = Channel::Create(std::move(buckets));
        if (!ch.ok()) return ch.status();
        channels.push_back(std::move(ch).value());
      }
    } else {  // kReplicatedIndex
      for (int p = 0; p < partitions; ++p) {
        const auto [lo, hi] = PartitionRange(num_records, partitions, p);
        std::vector<Bucket> buckets = index_buckets;
        buckets.reserve(buckets.size() + static_cast<std::size_t>(hi - lo));
        for (int r = lo; r < hi; ++r) buckets.push_back(make_data_bucket(r));
        Result<Channel> ch = Channel::Create(std::move(buckets));
        if (!ch.ok()) return ch.status();
        channels.push_back(std::move(ch).value());
      }
    }
  }

  Result<ChannelGroup> group =
      ChannelGroup::Create(std::move(channels), multichannel.switch_cost_bytes);
  if (!group.ok()) return group.status();
  program->group_ = std::move(group).value();
  return program;
}

int MultiChannelProgram::HomeChannel(std::string_view key) const {
  const auto it = std::upper_bound(
      partition_first_keys_.begin(), partition_first_keys_.end(), key,
      [](std::string_view k, const std::string& first) { return k < first; });
  const auto p =
      std::max<std::ptrdiff_t>(0, it - partition_first_keys_.begin() - 1);
  return first_data_channel_ + static_cast<int>(p);
}

int MultiChannelProgram::StartChannel(Bytes tune_in) const {
  if (allocation_ == ChannelAllocation::kIndexOnOne) return 0;
  const std::uint64_t h =
      Mix64(static_cast<std::uint64_t>(tune_in) ^ kStartChannelSalt);
  return static_cast<int>(h % static_cast<std::uint64_t>(group().num_channels()));
}

AccessResult MultiChannelProgram::Access(std::string_view key,
                                         Bytes tune_in) const {
  return allocation_ == ChannelAllocation::kDataPartitioned
             ? AccessPartitioned(key, tune_in)
             : AccessIndexed(key, tune_in);
}

AccessResult MultiChannelProgram::AccessPartitioned(std::string_view key,
                                                    Bytes tune_in) const {
  const ChannelGroup& group = this->group();
  AccessResult result;
  const int s = StartChannel(tune_in);
  result.start_channel = static_cast<std::int16_t>(s);
  result.final_channel = result.start_channel;
  const Channel& start = group.channel(s);

  // Initial wait plus one directory read: every bucket carries the
  // key-range -> channel table (a P-entry map, negligible next to Dt), so
  // one full bucket tells the client its key's home channel.
  Bytes t = start.NextBoundaryTime(tune_in);
  result.tuning_time = t - tune_in;
  const Bucket& directory =
      start.bucket(start.BucketAtPhase(t % start.cycle_bytes()));
  t += directory.size;
  result.tuning_time += directory.size;
  ++result.probes;
  if (directory.kind != BucketKind::kData) ++result.index_probes;

  const int home = HomeChannel(key);
  if (home != s) {
    result.channel_hops = 1;
    result.switch_bytes = group.switch_cost_bytes();
    t += group.switch_cost_bytes();
    result.final_channel = static_cast<std::int16_t>(home);
  }

  const AccessResult sub = partitions_[static_cast<std::size_t>(home)]->Access(
      key, t);
  result.found = sub.found;
  result.access_time = (t - tune_in) + sub.access_time;
  result.tuning_time += sub.tuning_time;
  result.probes += sub.probes;
  result.false_drops += sub.false_drops;
  result.index_probes += sub.index_probes;
  result.overflow_hops += sub.overflow_hops;
  result.anomalies += sub.anomalies;
  if (home != s) result.final_channel_tuning = sub.tuning_time;
  return result;
}

AccessResult MultiChannelProgram::AccessIndexed(std::string_view key,
                                                Bytes tune_in) const {
  const ChannelGroup& group = this->group();
  AccessResult result;
  const int s = StartChannel(tune_in);
  result.start_channel = static_cast<std::int16_t>(s);
  result.final_channel = result.start_channel;
  const Channel& index_channel = group.channel(s);

  // Initial wait; read the first complete bucket to find the index
  // segment (every bucket of an index-carrying channel points at it).
  Bytes t = index_channel.NextBoundaryTime(tune_in);
  result.tuning_time = t - tune_in;
  {
    const Bucket& first = index_channel.bucket(
        index_channel.BucketAtPhase(t % index_channel.cycle_bytes()));
    t += first.size;
    result.tuning_time += first.size;
    ++result.probes;
    if (first.kind == BucketKind::kIndex) ++result.index_probes;
    t = index_channel.NextArrivalOfPhase(first.next_index_segment_phase, t);
  }

  // Descend the global tree on the index channel; the leaf pointer names
  // the data bucket's (channel, phase).
  const int max_probes = 4 * tree_->height() + 8;
  while (result.probes < max_probes) {
    const Bucket& bucket = index_channel.bucket(
        index_channel.BucketAtPhase(t % index_channel.cycle_bytes()));
    t += bucket.size;
    result.tuning_time += bucket.size;
    ++result.probes;
    if (bucket.kind != BucketKind::kIndex) {
      ++result.anomalies;
      break;
    }
    ++result.index_probes;
    if (key < bucket.range_lo || key > bucket.range_hi) break;  // not on air
    const PointerEntry* entry = FindCoveringEntry(bucket.local, key);
    if (entry == nullptr) break;  // key falls in a gap: not on air
    if (bucket.level > 0) {
      t = index_channel.NextArrivalOfPhase(entry->target_phase, t);
      continue;
    }
    // Leaf hit: hop to the data channel (if different) and download.
    const int target =
        entry->target_channel == kSameChannel ? s : entry->target_channel;
    if (target != s) {
      result.channel_hops = 1;
      result.switch_bytes = group.switch_cost_bytes();
      t += group.switch_cost_bytes();
      result.final_channel = static_cast<std::int16_t>(target);
    }
    const Channel& data_channel = group.channel(target);
    t = data_channel.NextArrivalOfPhase(entry->target_phase, t);
    const Bucket& data = data_channel.bucket(
        data_channel.BucketAtPhase(t % data_channel.cycle_bytes()));
    t += data.size;
    result.tuning_time += data.size;
    ++result.probes;
    if (target != s) result.final_channel_tuning = data.size;
    result.found = true;
    break;
  }
  if (result.probes >= max_probes && !result.found) ++result.anomalies;
  result.access_time = t - tune_in;
  return result;
}

}  // namespace airindex
