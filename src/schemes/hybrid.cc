#include "schemes/hybrid.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "schemes/entry_search.h"

namespace airindex {

Result<HybridIndexing> HybridIndexing::Build(
    std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
    SignatureParams params, int group_size, int m) {
  if (dataset == nullptr || dataset->size() == 0) {
    return Status::InvalidArgument(
        "hybrid indexing needs a non-empty dataset");
  }
  if (group_size < 1) {
    return Status::InvalidArgument("group_size must be at least 1");
  }
  if (geometry.signature_bytes <= 0 || params.bits_per_attribute <= 0 ||
      params.bits_per_attribute > geometry.signature_bytes * 8) {
    return Status::InvalidArgument("bad signature configuration");
  }
  const int num_records = dataset->size();
  const int num_groups = (num_records + group_size - 1) / group_size;

  Result<BTree> tree_result =
      BTree::Build(num_groups, geometry.index_fanout());
  if (!tree_result.ok()) return tree_result.status();
  BTree tree = std::move(tree_result).value();
  const std::vector<int> preorder = tree.PreorderSubtree(tree.root());

  if (m == 0) {
    // (1,m)'s sqrt rule in bytes: index segment vs data portion.
    const double tree_bytes = static_cast<double>(tree.nodes().size()) *
                              static_cast<double>(geometry.index_bucket_bytes());
    const double data_bytes =
        static_cast<double>(num_records) *
        static_cast<double>(geometry.signature_bucket_bytes() +
                            geometry.data_bucket_bytes());
    m = static_cast<int>(std::lround(std::sqrt(data_bytes / tree_bytes)));
    m = std::clamp(m, 1, num_groups);
  }
  if (m < 1 || m > num_groups) {
    return Status::InvalidArgument("hybrid replication count out of range");
  }

  SignatureGenerator generator(geometry, params);
  const auto group_first = [&](int g) { return g * group_size; };
  const auto group_last = [&](int g) {
    return std::min((g + 1) * group_size, num_records) - 1;
  };

  // ---- Pass 1: byte-accurate layout (buckets have mixed sizes). ----------
  struct Slot {
    enum Kind { kTreeNode, kRecordSig, kRecordData } kind;
    int id;  // node id / record id
    int segment;
  };
  std::vector<Slot> layout;
  std::vector<Bytes> slot_phase;
  Bytes at = 0;
  const auto emit = [&](Slot slot, Bytes size) {
    layout.push_back(slot);
    slot_phase.push_back(at);
    at += size;
  };

  std::vector<Bytes> segment_start_phase(static_cast<std::size_t>(m), 0);
  std::vector<Bytes> group_start_phase(static_cast<std::size_t>(num_groups),
                                       0);
  std::vector<std::vector<Bytes>> node_phase(
      static_cast<std::size_t>(m),
      std::vector<Bytes>(tree.nodes().size(), kInvalidPhase));
  int next_group = 0;
  for (int segment = 0; segment < m; ++segment) {
    segment_start_phase[static_cast<std::size_t>(segment)] = at;
    for (const int node_id : preorder) {
      node_phase[static_cast<std::size_t>(segment)]
                [static_cast<std::size_t>(node_id)] = at;
      emit(Slot{Slot::kTreeNode, node_id, segment},
           geometry.index_bucket_bytes());
    }
    const int chunk_end = static_cast<int>(
        (static_cast<std::int64_t>(segment) + 1) * num_groups / m);
    for (; next_group < chunk_end; ++next_group) {
      group_start_phase[static_cast<std::size_t>(next_group)] = at;
      for (int rec = group_first(next_group); rec <= group_last(next_group);
           ++rec) {
        emit(Slot{Slot::kRecordSig, rec, segment},
             geometry.signature_bucket_bytes());
        emit(Slot{Slot::kRecordData, rec, segment},
             geometry.data_bucket_bytes());
      }
    }
  }

  // ---- Pass 2: materialize buckets. ---------------------------------------
  std::vector<Bucket> buckets;
  buckets.reserve(layout.size());
  for (std::size_t pos = 0; pos < layout.size(); ++pos) {
    const Slot& slot = layout[pos];
    Bucket bucket;
    bucket.next_index_segment_phase =
        segment_start_phase[static_cast<std::size_t>((slot.segment + 1) % m)];
    switch (slot.kind) {
      case Slot::kRecordData:
        bucket.kind = BucketKind::kData;
        bucket.size = geometry.data_bucket_bytes();
        bucket.record_id = slot.id;
        break;
      case Slot::kRecordSig:
        bucket.kind = BucketKind::kSignature;
        bucket.size = geometry.signature_bucket_bytes();
        bucket.record_id = slot.id;
        bucket.signature = generator.RecordSignature(dataset->record(slot.id));
        break;
      case Slot::kTreeNode: {
        const BTreeNode& node = tree.node(slot.id);
        bucket.kind = BucketKind::kIndex;
        bucket.size = geometry.index_bucket_bytes();
        bucket.level = node.level;
        bucket.range_lo =
            dataset->record(group_first(node.first_record)).key;
        bucket.range_hi = dataset->record(group_last(node.last_record)).key;
        bucket.local.reserve(node.children.size());
        for (const int child : node.children) {
          PointerEntry entry;
          if (node.level == 0) {
            // Leaf entries point at group starts.
            entry.key_lo = dataset->record(group_first(child)).key;
            entry.key_hi = dataset->record(group_last(child)).key;
            entry.target_phase =
                group_start_phase[static_cast<std::size_t>(child)];
          } else {
            const BTreeNode& child_node = tree.node(child);
            entry.key_lo =
                dataset->record(group_first(child_node.first_record)).key;
            entry.key_hi =
                dataset->record(group_last(child_node.last_record)).key;
            entry.target_phase =
                node_phase[static_cast<std::size_t>(slot.segment)]
                          [static_cast<std::size_t>(child)];
          }
          bucket.local.push_back(std::move(entry));
        }
        break;
      }
    }
    buckets.push_back(std::move(bucket));
  }

  Result<Channel> channel = Channel::Create(std::move(buckets));
  if (!channel.ok()) return channel.status();
  return HybridIndexing(std::move(dataset), generator,
                        std::move(tree), std::move(channel).value(),
                        group_size, m);
}

namespace {

// The hybrid tree-descent + in-group signature sift over either channel
// view (schemes/channel_view.h).
template <typename View>
AccessResult HybridWalk(const View& view, std::string_view key, Bytes tune_in,
                        const Dataset& dataset,
                        const SignatureGenerator& generator, int tree_height,
                        int group_size) {
  AccessResult result;
  const std::vector<std::uint64_t> query = generator.QuerySignature(key);
  const int words = generator.words();

  // Initial wait + first complete bucket, then the next index segment.
  Bytes t = view.NextBoundaryTime(tune_in);
  result.tuning_time = t - tune_in;
  {
    const auto first = view.bucket(view.BucketAtPhase(t % view.cycle_bytes()));
    t += first.size();
    result.tuning_time += first.size();
    ++result.probes;
    if (first.kind() == BucketKind::kIndex) ++result.index_probes;
    t = view.NextArrivalOfPhase(first.next_index_segment_phase(), t);
  }

  // Descend the group tree.
  const int max_probes = 4 * tree_height + 8 + 2 * group_size;
  bool in_group = false;
  int group_remaining = 0;
  while (result.probes < max_probes) {
    const std::size_t i = view.BucketAtPhase(t % view.cycle_bytes());
    const auto bucket = view.bucket(i);

    if (!in_group) {
      t += bucket.size();
      result.tuning_time += bucket.size();
      ++result.probes;
      if (bucket.kind() != BucketKind::kIndex) {
        ++result.anomalies;
        break;
      }
      ++result.index_probes;
      if (key < bucket.range_lo() || key > bucket.range_hi()) break;
      const EntryView entry = bucket.FindLocal(key);
      if (!entry.found) break;  // gap: not on air
      t = view.NextArrivalOfPhase(entry.target_phase, t);
      if (bucket.level() == 0) {
        in_group = true;
        group_remaining = group_size;
      }
      continue;
    }

    // Inside the group: sift record signatures.
    if (group_remaining == 0 || bucket.kind() != BucketKind::kSignature) {
      break;  // group exhausted: not on air
    }
    t += bucket.size();
    result.tuning_time += bucket.size();
    ++result.probes;
    ++result.index_probes;
    --group_remaining;
    const auto data = view.bucket((i + 1) % view.num_buckets());
    if (SignatureGenerator::Matches(bucket.signature_words(), query.data(),
                                    words)) {
      t += data.size();
      result.tuning_time += data.size();
      ++result.probes;
      const Record& record = dataset.record(static_cast<int>(data.record_id()));
      if (record.key == key) {
        result.found = true;
        break;
      }
      ++result.false_drops;
    } else {
      t += data.size();  // doze over the data bucket
    }
  }
  if (result.probes >= max_probes && !result.found) ++result.anomalies;
  result.access_time = t - tune_in;
  return result;
}

}  // namespace

AccessResult HybridIndexing::Access(std::string_view key,
                                    Bytes tune_in) const {
  if (const ArenaChannelView* arena = arena_walk_.view_or_null()) {
    return HybridWalk(*arena, key, tune_in, *dataset_, generator_,
                      tree_.height(), group_size_);
  }
  return HybridWalk(PointerChannelView(channel_), key, tune_in, *dataset_,
                    generator_, tree_.height(), group_size_);
}

FilterResult HybridIndexing::Filter(std::string_view value,
                                    Bytes tune_in) const {
  FilterResult result;
  const std::vector<std::uint64_t> query = generator_.QuerySignature(value);
  const int words = generator_.words();
  const Bytes cycle = channel_.cycle_bytes();
  const std::size_t num = channel_.num_buckets();

  // Advance to the next signature bucket, listening until it starts.
  Bytes t = tune_in;
  std::size_t i = channel_.BucketAtPhase(t % cycle);
  if (channel_.start_phase(i) != t % cycle ||
      channel_.bucket(i).kind != BucketKind::kSignature) {
    do {
      i = (i + 1) % num;
    } while (channel_.bucket(i).kind != BucketKind::kSignature);
    t = channel_.NextArrivalOfPhase(channel_.start_phase(i), t);
  }
  result.tuning_time = t - tune_in;

  const int total_sigs = dataset_->size();
  for (int sifted = 0; sifted < total_sigs; ++sifted) {
    const Bucket& sig = channel_.bucket(i);
    t += sig.size;
    result.tuning_time += sig.size;
    ++result.probes;
    const Bucket& data = channel_.bucket((i + 1) % num);
    if (SignatureGenerator::Matches(sig.signature.data(), query.data(),
                                    words)) {
      t += data.size;
      result.tuning_time += data.size;
      ++result.probes;
      const Record& record =
          dataset_->record(static_cast<int>(data.record_id));
      bool carries = false;
      for (const std::string& attribute : record.attributes) {
        if (attribute == value) {
          carries = true;
          break;
        }
      }
      if (carries) {
        result.matches.push_back(static_cast<int>(record.id));
      } else {
        ++result.false_drops;
      }
    }
    if (sifted + 1 == total_sigs) break;
    // Doze to the next signature bucket (skipping data and index parts).
    std::size_t j = (i + 1) % num;
    while (channel_.bucket(j).kind != BucketKind::kSignature) {
      j = (j + 1) % num;
    }
    t = channel_.NextArrivalOfPhase(channel_.start_phase(j), t);
    i = j;
  }
  result.access_time = t - tune_in;
  std::sort(result.matches.begin(), result.matches.end());
  return result;
}

Result<HybridIndexing> HybridIndexing::Restore(
    std::shared_ptr<const Dataset> dataset, const BucketGeometry& geometry,
    SignatureParams params, Channel channel, int group_size, int m) {
  if (dataset == nullptr || dataset->size() == 0) {
    return Status::InvalidArgument("hybrid restore needs a non-empty dataset");
  }
  if (group_size < 1) {
    return Status::InvalidArgument(
        "hybrid restore: group_size must be >= 1");
  }
  const int num_groups = (dataset->size() + group_size - 1) / group_size;
  if (m < 1 || m > num_groups) {
    return Status::InvalidArgument(
        "hybrid restore: resolved m out of [1, num_groups]");
  }
  SignatureGenerator generator(geometry, params);
  Result<BTree> tree = BTree::Build(num_groups, geometry.index_fanout());
  if (!tree.ok()) return tree.status();
  return HybridIndexing(std::move(dataset), generator,
                        std::move(tree).value(), std::move(channel),
                        group_size, m);
}

}  // namespace airindex
