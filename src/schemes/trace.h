#ifndef AIRINDEX_SCHEMES_TRACE_H_
#define AIRINDEX_SCHEMES_TRACE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "broadcast/channel.h"

namespace airindex {

/// What the client did during one step of an access-protocol walk.
enum class ProbeAction {
  /// Listened from tune-in to the first complete bucket boundary.
  kInitialWait,
  /// Read a bucket in full (radio on).
  kRead,
  /// Dozed (radio off) until a target phase arrived.
  kDoze,
  /// Read the requested record's data bucket (the final download).
  kDownload,
  /// Applied the "K below the last broadcast key" rule: dozed to the
  /// next broadcast cycle.
  kRestart,
  /// Followed the control index up to an ancestor's next occurrence.
  kClimb,
  /// Concluded (found, or proved not-on-air).
  kConclude,
};

/// Printable name of a probe action.
const char* ProbeActionToString(ProbeAction action);

/// One step of a traced protocol walk.
struct ProbeEvent {
  /// Absolute simulated time at which the step began.
  Bytes at = 0;
  /// Bytes the step spanned (listening for kRead/kDownload/kInitialWait,
  /// silence for kDoze/kRestart/kClimb).
  Bytes duration = 0;
  ProbeAction action = ProbeAction::kRead;
  /// Channel bucket index the step involved (kRead/kDownload), or
  /// npos-like value when not applicable.
  std::size_t bucket = static_cast<std::size_t>(-1);
  /// Free-form annotation ("descend to level 2", "key passed", ...).
  std::string note;
};

/// A full annotated walk, in order.
using AccessTrace = std::vector<ProbeEvent>;

/// Pretty-prints a trace with bucket summaries from the channel.
void PrintTrace(const AccessTrace& trace, const Channel& channel,
                std::ostream& os);

}  // namespace airindex

#endif  // AIRINDEX_SCHEMES_TRACE_H_
