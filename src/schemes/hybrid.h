#ifndef AIRINDEX_SCHEMES_HYBRID_H_
#define AIRINDEX_SCHEMES_HYBRID_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "broadcast/channel.h"
#include "broadcast/geometry.h"
#include "data/dataset.h"
#include "schemes/access.h"
#include "schemes/btree.h"
#include "schemes/channel_view.h"
#include "schemes/filter.h"
#include "schemes/signature.h"

namespace airindex {

/// Hybrid index + signature indexing, after Hu, Lee & Lee (CIKM'99 /
/// ICDE'00) — the paper's references [3] and [4]: "indexing schemes
/// taking advantages of both index tree and signature indexing
/// techniques".
///
/// Records are clustered into groups of G. A B+ tree indexes *groups*
/// (not records), and the full tree is broadcast m times per cycle,
/// (1,m)-style; each group is broadcast as [record signature, data] x G.
/// A key lookup descends the tree to the covering group (few probes,
/// cheap absence detection — the tree advantages) and then sifts the
/// group's record signatures (the signature advantages: tiny index
/// overhead per record, and attribute filtering still works).
///
/// Compared to (1,m) over records, the tree is a factor ~G smaller, so
/// the cycle — and with it access time — shrinks; tuning pays an extra
/// ~G/2 signature reads inside the group.
class HybridIndexing : public BroadcastScheme {
 public:
  /// Builds the channel. `group_size` G >= 1; `m` = tree replication
  /// count (0 = sqrt rule on the group tree).
  static Result<HybridIndexing> Build(std::shared_ptr<const Dataset> dataset,
                                      const BucketGeometry& geometry,
                                      SignatureParams params = {},
                                      int group_size = 16, int m = 0);

  /// Reattaches a channel inflated from a program arena. `group_size`
  /// and `m` are the resolved values recorded at flatten time; the
  /// group tree is rebuilt deterministically.
  static Result<HybridIndexing> Restore(std::shared_ptr<const Dataset> dataset,
                                        const BucketGeometry& geometry,
                                        SignatureParams params, Channel channel,
                                        int group_size, int m);

  const Channel& channel() const override { return channel_; }
  const char* name() const override { return "hybrid index+signature"; }

  AccessResult Access(std::string_view key, Bytes tune_in) const override;

  /// Attribute filtering over the grouped layout: the client still sifts
  /// every record signature of one cycle, dozing over data buckets and
  /// index segments.
  FilterResult Filter(std::string_view value, Bytes tune_in) const;

  void AttachArena(std::shared_ptr<const ProgramArena> arena) override {
    arena_walk_.Attach(std::move(arena), channel_);
  }

  int group_size() const { return group_size_; }
  int m() const { return m_; }
  const BTree& tree() const { return tree_; }

 private:
  HybridIndexing(std::shared_ptr<const Dataset> dataset,
                 SignatureGenerator generator, BTree tree, Channel channel,
                 int group_size, int m)
      : dataset_(std::move(dataset)),
        generator_(generator),
        tree_(std::move(tree)),
        channel_(std::move(channel)),
        group_size_(group_size),
        m_(m) {}

  std::shared_ptr<const Dataset> dataset_;
  SignatureGenerator generator_;
  BTree tree_;  // indexes groups: "record" i of the tree is group i
  Channel channel_;
  int group_size_;
  int m_;
  ArenaWalkSupport arena_walk_;
};

}  // namespace airindex

#endif  // AIRINDEX_SCHEMES_HYBRID_H_
