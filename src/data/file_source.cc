#include "data/file_source.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace airindex {

Result<Dataset> LoadDatasetFromFile(const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open dataset file: " + path);
  }
  std::vector<Record> records;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    Record record;
    std::stringstream fields(line);
    std::string field;
    bool first = true;
    while (std::getline(fields, field, delimiter)) {
      if (first) {
        record.key = field;
        first = false;
      } else {
        record.attributes.push_back(field);
      }
    }
    if (record.key.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": missing key");
    }
    records.push_back(std::move(record));
  }
  if (records.empty()) {
    return Status::InvalidArgument("no records in " + path);
  }
  return Dataset::FromRecords(std::move(records));
}

Status SaveDatasetToFile(const Dataset& dataset, const std::string& path,
                         char delimiter) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open for writing: " + path);
  }
  for (const Record& record : dataset.records()) {
    out << record.key;
    for (const std::string& attribute : record.attributes) {
      out << delimiter << attribute;
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace airindex
