// Layer: 2 (data) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_DATA_DATASET_H_
#define AIRINDEX_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/record.h"

namespace airindex {

/// Configuration for the synthetic dictionary generator.
///
/// The paper's data source is "a dictionary database consisting of about
/// 35,000 records" of text (Table 1: 500-byte records, 25-byte keys). The
/// experiments depend only on record count, record size and key size, so
/// we substitute a deterministic generator that reproduces those knobs at
/// any scale (see DESIGN.md, Substitutions).
struct DatasetConfig {
  /// Number of records (the paper sweeps 7000–34000).
  int num_records = 7000;
  /// Width of every key, in characters == broadcast bytes.
  int key_width = 25;
  /// Number of non-key attributes per record (signature input).
  int num_attributes = 8;
  /// Width of each attribute value, in characters.
  int attribute_width = 8;
  /// Seed for attribute content (keys are seed-independent so that key
  /// order and availability structure are stable across runs).
  std::uint64_t seed = 1;
};

/// An immutable, key-sorted collection of records plus the query-side
/// helpers the testbed needs (exact lookup and guaranteed-absent keys).
///
/// Present keys are the encodings of odd codes 1, 3, 5, ...; the even
/// codes in between encode keys that are lexicographically interleaved
/// with the data but guaranteed absent. The data-availability experiments
/// (paper Section 5.1) draw misses from those.
class Dataset {
 public:
  /// Generates a dataset. Fails with InvalidArgument when the
  /// configuration is inconsistent (e.g., the key width cannot encode the
  /// requested number of distinct keys).
  static Result<Dataset> Generate(const DatasetConfig& config);

  /// Wraps externally supplied records (the paper's "information is read
  /// from files or databases"). Records are sorted by key and re-ids
  /// assigned in key order. Fails when empty, when keys repeat, or when
  /// a key is empty or contains characters at or below '!' (reserved for
  /// synthesizing guaranteed-absent probe keys).
  static Result<Dataset> FromRecords(std::vector<Record> records);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// All records, sorted by key ascending.
  const std::vector<Record>& records() const { return records_; }

  /// Number of records.
  int size() const { return static_cast<int>(records_.size()); }

  /// The record at key-order position `index`.
  const Record& record(int index) const { return records_[index]; }

  /// Key-order position of `key`, or -1 if absent.
  int FindIndex(std::string_view key) const;

  /// Key-order positions of every record carrying `value` in any non-key
  /// attribute (linear scan; ground truth for the filtering protocols).
  std::vector<int> FindByAttribute(std::string_view value) const;

  /// The i-th guaranteed-absent key (i in [0, size()]); interleaved with
  /// the present keys so absent probes exercise the same index paths.
  /// For generated datasets these are the even key codes; for external
  /// (FromRecords) datasets, key i-1 extended with '!' — strictly
  /// between keys i-1 and i in either case.
  std::string AbsentKey(int i) const;

  /// Interned view of AbsentKey(i) for i in [0, size()], backed by a
  /// table precomputed at construction. This is the request hot path:
  /// RequestGenerator hands the view to Query without allocating. The
  /// view lives as long as this Dataset instance.
  std::string_view absent_key(int i) const {
    return absent_keys_[static_cast<std::size_t>(i)];
  }

  /// Smallest and largest present key.
  const std::string& min_key() const { return records_.front().key; }
  const std::string& max_key() const { return records_.back().key; }

  /// The generator configuration this dataset was built from.
  const DatasetConfig& config() const { return config_; }

  /// True when the dataset came from the synthetic generator (as opposed
  /// to FromRecords).
  bool synthetic() const { return synthetic_; }

 private:
  explicit Dataset(DatasetConfig config) : config_(config) {}

  /// Fills absent_keys_ once records_ is final (both factories call it).
  void InternAbsentKeys();

  DatasetConfig config_;
  std::vector<Record> records_;
  /// Precomputed AbsentKey(0..size()) so the hot path never allocates.
  std::vector<std::string> absent_keys_;
  bool synthetic_ = true;
};

/// Encodes `code` as a fixed-width lowercase base-26 string whose
/// lexicographic order equals numeric order. Exposed for tests.
/// Returns an empty string when the width cannot represent the code.
std::string EncodeKey(std::uint64_t code, int width);

}  // namespace airindex

#endif  // AIRINDEX_DATA_DATASET_H_
