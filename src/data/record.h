#ifndef AIRINDEX_DATA_RECORD_H_
#define AIRINDEX_DATA_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace airindex {

/// One broadcast data item (paper Section 3, "Record"): a primary key and
/// a few non-key attributes.
///
/// The *logical* size of a record on the channel is fixed by
/// BucketGeometry::record_bytes (the paper's 500-byte records); the
/// strings held here are only the parts the protocols actually inspect
/// (key comparisons, signature generation), not 500 bytes of payload.
struct Record {
  /// Dense index of the record in key order (0-based).
  std::uint64_t id = 0;
  /// Primary key: fixed-width, lexicographically ordered.
  std::string key;
  /// Non-key attribute values (used by signature generation).
  std::vector<std::string> attributes;
};

}  // namespace airindex

#endif  // AIRINDEX_DATA_RECORD_H_
