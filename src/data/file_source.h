#ifndef AIRINDEX_DATA_FILE_SOURCE_H_
#define AIRINDEX_DATA_FILE_SOURCE_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace airindex {

/// Loads a dataset from a delimited text file — the paper's testbed
/// architecture reads its Data object "from files or databases".
///
/// Format: one record per line, `key<delim>attr1<delim>attr2...`;
/// blank lines and lines starting with '#' are skipped. Keys must be
/// unique, non-empty, and contain only characters above '!' (see
/// Dataset::FromRecords). Fails with NotFound when the file cannot be
/// opened and InvalidArgument on malformed content.
Result<Dataset> LoadDatasetFromFile(const std::string& path,
                                    char delimiter = ',');

/// Writes `dataset` in the same format (round-trip support, and a handy
/// way for examples to materialize sample data).
Status SaveDatasetToFile(const Dataset& dataset, const std::string& path,
                         char delimiter = ',');

}  // namespace airindex

#endif  // AIRINDEX_DATA_FILE_SOURCE_H_
