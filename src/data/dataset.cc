#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "des/random.h"

namespace airindex {

namespace {

// Largest code representable in `width` base-26 characters, capped so the
// arithmetic below cannot overflow.
std::uint64_t MaxCode(int width) {
  std::uint64_t max = 1;
  for (int i = 0; i < width && i < 13; ++i) max *= 26;
  return max - 1;
}

// Deterministic pseudo-word for attribute content.
std::string PseudoWord(std::uint64_t h, int width) {
  std::string out(static_cast<std::size_t>(width), 'a');
  for (int i = 0; i < width; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<char>('a' + static_cast<int>(h % 26));
    h = Mix64(h);
  }
  return out;
}

}  // namespace

std::string EncodeKey(std::uint64_t code, int width) {
  if (width <= 0 || code > MaxCode(width)) return std::string();
  std::string out(static_cast<std::size_t>(width), 'a');
  for (int i = width - 1; i >= 0 && code > 0; --i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<char>('a' + static_cast<int>(code % 26));
    code /= 26;
  }
  return out;
}

Result<Dataset> Dataset::Generate(const DatasetConfig& config) {
  if (config.num_records <= 0) {
    return Status::InvalidArgument("num_records must be positive");
  }
  if (config.key_width <= 0) {
    return Status::InvalidArgument("key_width must be positive");
  }
  if (config.num_attributes < 0 || config.attribute_width <= 0) {
    return Status::InvalidArgument("bad attribute configuration");
  }
  // Present keys use odd codes 1..2*Nr-1; absent keys the even codes.
  const std::uint64_t top_code =
      2 * static_cast<std::uint64_t>(config.num_records);
  if (top_code > MaxCode(config.key_width)) {
    return Status::InvalidArgument(
        "key_width too small to encode num_records distinct keys");
  }

  Dataset dataset(config);
  dataset.records_.reserve(static_cast<std::size_t>(config.num_records));
  for (int i = 0; i < config.num_records; ++i) {
    Record record;
    record.id = static_cast<std::uint64_t>(i);
    record.key = EncodeKey(2 * static_cast<std::uint64_t>(i) + 1,
                           config.key_width);
    record.attributes.reserve(
        static_cast<std::size_t>(config.num_attributes));
    for (int a = 0; a < config.num_attributes; ++a) {
      const std::uint64_t h =
          Mix64(config.seed ^ (record.id * 0x100000001b3ULL) ^
                (static_cast<std::uint64_t>(a) << 48));
      record.attributes.push_back(PseudoWord(h, config.attribute_width));
    }
    dataset.records_.push_back(std::move(record));
  }
  dataset.InternAbsentKeys();
  return dataset;
}

Result<Dataset> Dataset::FromRecords(std::vector<Record> records) {
  if (records.empty()) {
    return Status::InvalidArgument("FromRecords needs at least one record");
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.key < b.key; });
  int max_key_width = 0;
  std::size_t max_attributes = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::string& key = records[i].key;
    if (key.empty()) {
      return Status::InvalidArgument("record with empty key");
    }
    for (const char c : key) {
      if (c <= '!') {
        return Status::InvalidArgument(
            "key contains a character at or below '!': " + key);
      }
    }
    if (i > 0 && records[i - 1].key == key) {
      return Status::InvalidArgument("duplicate key: " + key);
    }
    records[i].id = static_cast<std::uint64_t>(i);
    max_key_width = std::max(max_key_width, static_cast<int>(key.size()));
    max_attributes = std::max(max_attributes, records[i].attributes.size());
  }

  DatasetConfig config;
  config.num_records = static_cast<int>(records.size());
  config.key_width = max_key_width;
  config.num_attributes = static_cast<int>(max_attributes);
  Dataset dataset(config);
  dataset.records_ = std::move(records);
  dataset.synthetic_ = false;
  dataset.InternAbsentKeys();
  return dataset;
}

int Dataset::FindIndex(std::string_view key) const {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), key,
      [](const Record& r, std::string_view k) { return r.key < k; });
  if (it == records_.end() || it->key != key) return -1;
  return static_cast<int>(it - records_.begin());
}

std::vector<int> Dataset::FindByAttribute(std::string_view value) const {
  std::vector<int> matches;
  for (const Record& record : records_) {
    for (const std::string& attribute : record.attributes) {
      if (attribute == value) {
        matches.push_back(static_cast<int>(record.id));
        break;
      }
    }
  }
  return matches;
}

std::string Dataset::AbsentKey(int i) const {
  if (i >= 0 && i <= size()) {
    return absent_keys_[static_cast<std::size_t>(i)];
  }
  if (synthetic_) {
    return EncodeKey(2 * static_cast<std::uint64_t>(i), config_.key_width);
  }
  // '!' sorts below every allowed key character, so key[i-1] + "!" falls
  // strictly between key[i-1] and key[i]; "!" alone sorts below key[0].
  if (i <= 0) return "!";
  return records_[static_cast<std::size_t>(size() - 1)].key + "!";
}

void Dataset::InternAbsentKeys() {
  absent_keys_.reserve(records_.size() + 1);
  for (int i = 0; i <= size(); ++i) {
    if (synthetic_) {
      absent_keys_.push_back(
          EncodeKey(2 * static_cast<std::uint64_t>(i), config_.key_width));
    } else if (i == 0) {
      absent_keys_.push_back("!");
    } else {
      absent_keys_.push_back(records_[static_cast<std::size_t>(i - 1)].key +
                             "!");
    }
  }
}

}  // namespace airindex
