// Layer: 4 (analytical) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_ANALYTICAL_MODELS_H_
#define AIRINDEX_ANALYTICAL_MODELS_H_

#include <cstdint>
#include <vector>

#include "broadcast/geometry.h"

namespace airindex {

/// Expected access and tuning time of a scheme, in bytes — the paper's
/// Section 2 closed forms. These are the "(A)" series of Figure 4; the
/// testbed produces the "(S)" series.
struct AnalyticalEstimate {
  double access_time = 0.0;
  double tuning_time = 0.0;
};

/// Flat broadcast: both metrics are about half the broadcast cycle
/// (Section 4.2), plus the initial wait and the final download.
AnalyticalEstimate FlatModel(int num_records, const BucketGeometry& geometry);

/// Full-tree properties used by the B+-tree models. The paper's formulas
/// assume a complete n-ary tree; k = ceil(log_n(Nr)).
struct BTreeModelShape {
  int levels = 0;          // k
  double index_buckets = 0;  // I: total nodes of the (complete) tree
};

/// Shape of the complete index tree the analytical formulas assume.
BTreeModelShape BTreeShape(int num_records, const BucketGeometry& geometry);

/// (1,m) indexing with the whole tree broadcast m times per cycle.
/// Derived exactly as the paper derives distributed indexing:
/// At = initial wait + avg probe to next index segment + half cycle;
/// Tt = initial wait + first bucket + k tree levels + download.
AnalyticalEstimate OneMModel(int num_records, const BucketGeometry& geometry,
                             int m);

/// Access-time-optimal m* = sqrt(Nr / I) (clamped to [1, Nr]).
int OneMOptimalM(int num_records, const BucketGeometry& geometry);

/// Distributed indexing with r replicated levels (paper Section 2.1):
///   At = 1/2 ((n^(k-r)-1)/(n-1) + (n^(r+1)-n)/(n^(r+1)-n^r)
///             + Nr/n^r + N + 1) * Dt
///   Tt = (k + 3/2) * Dt
/// where N counts all buckets of the cycle.
AnalyticalEstimate DistributedModel(int num_records,
                                    const BucketGeometry& geometry, int r);

/// r in [0, k-1] minimizing the model's access time.
int DistributedOptimalR(int num_records, const BucketGeometry& geometry);

/// Node counts of the *actual* (possibly incomplete) bottom-up B+ tree:
/// count_at_depth[0] == 1 is the root, count_at_depth[height-1] the leaf
/// level.
struct BTreeLevelCounts {
  std::vector<long long> count_at_depth;
  int height = 0;
};

/// Level counts of the tree BTree::Build produces, without building it.
BTreeLevelCounts ComputeBTreeLevels(int num_records, int fanout);

/// Same formula structure as OneMModel but with the actual tree's index
/// bucket count instead of the complete-tree closed form. This is the
/// series to compare against simulation (the paper's Figure 4 shows
/// simulation matching analysis, which requires consistent tree shapes).
AnalyticalEstimate OneMModelExact(int num_records,
                                  const BucketGeometry& geometry, int m);

/// m* computed from the actual tree size.
int OneMOptimalMExact(int num_records, const BucketGeometry& geometry);

/// Same formula structure as DistributedModel but with actual level
/// counts: replicated occurrences are sum of child counts, segments are
/// the real depth-r node count.
AnalyticalEstimate DistributedModelExact(int num_records,
                                         const BucketGeometry& geometry,
                                         int r);

/// r minimizing DistributedModelExact's access time.
int DistributedOptimalRExact(int num_records, const BucketGeometry& geometry);

/// Simple hashing (paper Section 2.2), assembled from the components the
/// paper derives: Ft + Ht(three tune-in scenarios) + St + Ct + Dt for
/// access; the four-probe expectation for tuning.
/// `allocated` is Na, `colliding` Nc; the cycle has N = Na + Nc buckets.
AnalyticalEstimate HashingModel(int num_records, int allocated, int colliding,
                                const BucketGeometry& geometry);

/// Expected number of colliding (displaced) records when hashing Nr
/// records uniformly into Na slots: Nr - Na * (1 - (1 - 1/Na)^Nr).
double ExpectedHashCollisions(int num_records, int allocated);

/// Theoretical false-drop probability of superimposed coding: a record
/// signature sets `bits_per_attribute` bits for the key and for each of
/// `num_attributes` attributes (with replacement) in a
/// (signature_bytes*8)-bit string; a key query of `bits_per_attribute`
/// bits false-drops on an unrelated record with probability ~f^s where
/// f = 1 - (1 - 1/B)^(s*(A+1)) is the expected fraction of set bits.
double TheoreticalFalseDropRate(const BucketGeometry& geometry,
                                int bits_per_attribute, int num_attributes);

/// Simple signature indexing (paper Section 2.3):
///   At = 1/2 (Dt + It)(Nr + 1)
///   Tt = 1/2 (Nr + 1) It + (Fd + 1/2) Dt
/// `false_drop_rate` is the per-signature false-drop probability; the
/// expected number of false drops on a scan of half the cycle is
/// Fd = false_drop_rate * Nr / 2.
AnalyticalEstimate SignatureModel(int num_records,
                                  const BucketGeometry& geometry,
                                  double false_drop_rate);

/// Closed-form access-time quantile of a fleet of (1,m) clients
/// (client/fleet.h), `q` in [0,1].
///
/// A client tuning in at a uniformly random phase waits U(0, S) to the
/// next index segment (S = segment bytes = (I + Nr/m) * Dt) and then
/// U(0, C) for its data bucket (C = cycle bytes; the offset of any
/// requested record from the segment start is uniform under a uniform
/// tune-in phase, for ANY record popularity). The access time is the sum
/// of the two independent uniforms — a trapezoidal density on [0, S+C] —
/// shifted by a constant so the distribution's mean equals
/// OneMModelExact's closed-form mean (the shift absorbs the initial
/// partial bucket and the index descent). Quantiles invert the
/// three-piece trapezoid CDF in closed form.
double OneMFleetAccessQuantile(int num_records,
                               const BucketGeometry& geometry, int m,
                               double q);

// --- multichannel models (schemes/multichannel.h strategies) ------------
//
// All three assume N synchronized channels on one byte clock and a
// client that starts on a uniformly random channel (index-on-one: always
// the index channel), pays `switch_cost_bytes` of dead air per hop, and
// hops at most once per request. The residual-wait term
// res = (Dt - C mod Dt) mod Dt is the re-alignment to the next bucket
// boundary after a hop of cost C.

/// Data-partitioned-by-key: each channel runs `per_partition` — the
/// single-channel estimate of the base scheme over Nr/N records. One
/// directory bucket tells the client its home channel; a hop happens with
/// probability (N-1)/N.
AnalyticalEstimate DataPartitionedModel(const AnalyticalEstimate& per_partition,
                                        int num_channels,
                                        const BucketGeometry& geometry,
                                        Bytes switch_cost_bytes);

/// Index-on-one: channel 0 cycles the global B+ tree (I buckets), the
/// other N-1 channels cycle flat data partitions of Nr/(N-1) records.
/// Every hit pays exactly one hop.
AnalyticalEstimate IndexOnOneModel(int num_records,
                                   const BucketGeometry& geometry,
                                   int num_channels, Bytes switch_cost_bytes);

/// Replicated-index: every channel cycles [global tree | its data
/// partition of Nr/N records]; only the final data jump hops, with
/// probability (N-1)/N.
AnalyticalEstimate ReplicatedIndexModel(int num_records,
                                        const BucketGeometry& geometry,
                                        int num_channels,
                                        Bytes switch_cost_bytes);

// --- skew-aware scheduling (broadcast/schedule.h) ------------------------

/// Square-root-rule lower bound on the expected access time of ANY
/// single-channel schedule of uniform `bucket_bytes` data slots serving
/// requests with the given popularity profile (Ammar & Wong): with
/// per-record spacing ∝ 1/√p the expected wait is (Dt/2)(Σ√p_i)², plus
/// the final download. The bound is fractional (ignores integer slot
/// rounding and the boundary half-bucket), which is exactly why it is a
/// lower bound for the simulated walk.
double SquareRootRuleBound(const std::vector<double>& popularity,
                           Bytes bucket_bytes);

/// Exact expected access time of the scheduled scan walk over a concrete
/// slot schedule: `record_slots[i]` lists record i's sorted slot indices
/// in a cycle of `num_slots` uniform slots. A client tuning in uniformly
/// waits half a bucket to the boundary, lands in gap j (length L_j
/// slots, cyclic) with probability L_j/num_slots, reads to the record's
/// next occurrence inclusive:
///   E[access | i] = Dt/2 + (Dt/M) Σ_j L_j(L_j-1)/2 + Dt.
/// Weighted by `popularity`. For the equally-spaced fractional optimum
/// this reduces to SquareRootRuleBound exactly.
double ScheduledScanAccessModel(
    const std::vector<std::vector<int>>& record_slots, std::int64_t num_slots,
    Bytes bucket_bytes, const std::vector<double>& popularity);

}  // namespace airindex

#endif  // AIRINDEX_ANALYTICAL_MODELS_H_
