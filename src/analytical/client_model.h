// Layer: 4 (analytical) — see docs/ARCHITECTURE.md for the layer map.
//
// Closed-form steady-state models of the stateful client (src/client):
// per-record cache residency under the three eviction policies, version
// freshness under the deterministic server update schedule, and the
// composition of both with a scheme's per-miss access/tuning costs.
//
// The functions are policy-agnostic building blocks — the caller picks
// the residency model that matches its ClientCache policy:
//
//   kLru  CheLruResidency(popularity, capacity)       (Che approximation)
//   kLfu  TopScoreResidency(popularity, capacity)     (perfect LFU keeps
//                                                      the top-C records)
//   kPix  TopScoreResidency(pix_scores, capacity)     with pix_scores[i]
//         = popularity[i] / broadcast_frequency[i]
//
// which keeps this layer free of client-layer types (analytical and
// client are both layer 4; neither includes the other).
#ifndef AIRINDEX_ANALYTICAL_CLIENT_MODEL_H_
#define AIRINDEX_ANALYTICAL_CLIENT_MODEL_H_

#include <vector>

#include "common/types.h"

namespace airindex {

/// Zipf(theta) probability of each rank 0..n-1 (rank 0 hottest) — the
/// request popularity des/zipf samples from, as a dense vector.
std::vector<double> ZipfPopularity(int n, double theta);

/// Che approximation of steady-state LRU residency: record i is cached
/// with probability 1 - exp(-q_i * tC), where the characteristic time tC
/// solves sum_i(1 - exp(-q_i * tC)) = capacity (bisection; time is
/// measured in requests, so only the popularity ratios matter).
/// capacity >= n degenerates to all-ones.
std::vector<double> CheLruResidency(const std::vector<double>& popularity,
                                    int capacity);

/// Residency of a score-ranked policy that keeps the `capacity` highest
/// scores resident (perfect LFU with popularity scores; PIX with
/// popularity/broadcast-frequency scores): 1.0 for the top-capacity
/// records, 0.0 otherwise. Ties broken by index (lower index resident),
/// matching the deterministic eviction tie-break.
std::vector<double> TopScoreResidency(const std::vector<double>& scores,
                                      int capacity);

/// Steady-state probability that a cache probe for record i finds its
/// copy fresh. Downloads renew the copy; the next version boundary
/// falls Uniform(0, T) after a download, and probes arrive Poisson at
/// per-byte rate lambda_i = availability * popularity[i] /
/// mean_interval_bytes — so each renewal cycle serves lambda_i * T/2
/// fresh probes before one stale probe re-downloads, giving
/// s_i = x / (x + 2) with x = lambda_i * T.
/// update_period == 0 (frozen data) yields all-ones.
std::vector<double> SteadyStateFreshness(const std::vector<double>& popularity,
                                         double availability,
                                         double mean_interval_bytes,
                                         Bytes update_period);

/// Probability a within-session repeat finds its copy fresh: the gap
/// back to the previous access is one inter-arrival ~ Exp(mu) with
/// mu = mean_interval_bytes, and the version boundary is uniform in the
/// period, so s_rep = 1 - (mu/T)(1 - exp(-T/mu)). update_period == 0
/// yields 1.0.
double RepeatFreshness(double mean_interval_bytes, Bytes update_period);

/// Inputs of the session composition (see ComposeClientSessionModel).
struct ClientSessionModelInputs {
  /// Request popularity over records (sums to 1).
  std::vector<double> popularity;
  /// Per-record cache residency (CheLruResidency / TopScoreResidency).
  std::vector<double> residency;
  /// Per-record freshness (SteadyStateFreshness); empty = all fresh.
  std::vector<double> freshness;
  /// Freshness of within-session repeats (RepeatFreshness); repeats
  /// re-probe after one inter-arrival, far sooner than the per-record
  /// steady-state gap the freshness vector describes.
  double repeat_freshness = 1.0;
  /// Probability a query's key is on air (TestbedConfig equivalent).
  double availability = 1.0;
  /// Session workload: K queries per session, repeat probability p.
  int session_length = 1;
  double repeat_probability = 0.0;
  /// Validation read charged per cache probe that finds an entry.
  double validation_bytes = 0.0;
  /// The wrapped scheme's per-miss expected costs (e.g. OneMModelExact).
  double miss_access_bytes = 0.0;
  double miss_tuning_bytes = 0.0;
};

/// Expected steady-state metrics of one session query.
struct ClientSessionEstimate {
  /// Probability the queried key is cached (fresh or stale) — the
  /// cache-probe rate that pays the validation read.
  double cached_ratio = 0.0;
  /// Probability the query is served from cache fresh — matches the
  /// simulator's cache_hits / session_queries.
  double hit_ratio = 0.0;
  /// Expected access / tuning bytes per query.
  double access_bytes = 0.0;
  double tuning_bytes = 0.0;
};

/// Composes residency and freshness with the session workload and the
/// wrapped scheme's miss costs:
///
///   rho  = (1 - 1/K) * p                     (repeat share of queries)
///   Hraw = rho * a + (1-rho) * a * sum q_i r_i
///   F    = rho * a * s_rep + (1-rho) * a * sum q_i r_i s_i
///   At   = (1 - F) * At_miss
///   Tt   = Hraw * Vt + (1 - F) * Tt_miss
///
/// (a repeated key was just accessed, so it is cached and its freshness
/// is s_rep = repeat_freshness). Stale hits pay both the validation
/// read (inside Hraw * Vt) and the full refetch (inside (1-F) * miss
/// costs), exactly as the simulator charges them.
ClientSessionEstimate ComposeClientSessionModel(
    const ClientSessionModelInputs& inputs);

}  // namespace airindex

#endif  // AIRINDEX_ANALYTICAL_CLIENT_MODEL_H_
