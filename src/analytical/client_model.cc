#include "analytical/client_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace airindex {

std::vector<double> ZipfPopularity(int n, double theta) {
  std::vector<double> popularity(static_cast<std::size_t>(std::max(n, 0)));
  double total = 0.0;
  for (std::size_t k = 0; k < popularity.size(); ++k) {
    popularity[k] =
        1.0 / std::pow(static_cast<double>(k + 1), std::max(theta, 0.0));
    total += popularity[k];
  }
  if (total > 0.0) {
    for (double& p : popularity) p /= total;
  }
  return popularity;
}

std::vector<double> CheLruResidency(const std::vector<double>& popularity,
                                    int capacity) {
  const std::size_t n = popularity.size();
  if (capacity <= 0) return std::vector<double>(n, 0.0);
  if (static_cast<std::size_t>(capacity) >= n) {
    return std::vector<double>(n, 1.0);
  }
  // Bisection on the monotone occupancy(tC) = sum(1 - exp(-q_i tC)).
  const auto occupancy = [&](double t) {
    double total = 0.0;
    for (const double q : popularity) total += 1.0 - std::exp(-q * t);
    return total;
  };
  double lo = 0.0;
  double hi = 1.0;
  while (occupancy(hi) < static_cast<double>(capacity) && hi < 1e18) {
    hi *= 2.0;
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (occupancy(mid) < static_cast<double>(capacity) ? lo : hi) = mid;
  }
  const double t_c = 0.5 * (lo + hi);
  std::vector<double> residency(n);
  for (std::size_t i = 0; i < n; ++i) {
    residency[i] = 1.0 - std::exp(-popularity[i] * t_c);
  }
  return residency;
}

std::vector<double> TopScoreResidency(const std::vector<double>& scores,
                                      int capacity) {
  const std::size_t n = scores.size();
  std::vector<double> residency(n, 0.0);
  if (capacity <= 0) return residency;
  if (static_cast<std::size_t>(capacity) >= n) {
    std::fill(residency.begin(), residency.end(), 1.0);
    return residency;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  for (int i = 0; i < capacity; ++i) {
    residency[order[static_cast<std::size_t>(i)]] = 1.0;
  }
  return residency;
}

std::vector<double> SteadyStateFreshness(const std::vector<double>& popularity,
                                         double availability,
                                         double mean_interval_bytes,
                                         Bytes update_period) {
  const std::size_t n = popularity.size();
  std::vector<double> freshness(n, 1.0);
  if (update_period <= 0 || mean_interval_bytes <= 0.0) return freshness;
  const auto period = static_cast<double>(update_period);
  for (std::size_t i = 0; i < n; ++i) {
    const double lambda =
        availability * popularity[i] / mean_interval_bytes;
    const double x = lambda * period;
    freshness[i] = x / (x + 2.0);
  }
  return freshness;
}

double RepeatFreshness(double mean_interval_bytes, Bytes update_period) {
  if (update_period <= 0 || mean_interval_bytes <= 0.0) return 1.0;
  const double ratio =
      static_cast<double>(update_period) / mean_interval_bytes;
  return 1.0 - (1.0 - std::exp(-ratio)) / ratio;
}

ClientSessionEstimate ComposeClientSessionModel(
    const ClientSessionModelInputs& inputs) {
  const std::size_t n = inputs.popularity.size();
  const double a = inputs.availability;
  const double rho =
      inputs.session_length > 1
          ? (1.0 - 1.0 / static_cast<double>(inputs.session_length)) *
                inputs.repeat_probability
          : 0.0;

  double fresh_hit = 0.0;  // sum q_i r_i s_i
  double cached = 0.0;     // sum q_i r_i
  for (std::size_t i = 0; i < n; ++i) {
    const double q = inputs.popularity[i];
    const double r = i < inputs.residency.size() ? inputs.residency[i] : 0.0;
    const double s = i < inputs.freshness.size() ? inputs.freshness[i] : 1.0;
    cached += q * r;
    fresh_hit += q * r * s;
  }

  ClientSessionEstimate estimate;
  estimate.cached_ratio = rho * a + (1.0 - rho) * a * cached;
  estimate.hit_ratio =
      rho * a * inputs.repeat_freshness + (1.0 - rho) * a * fresh_hit;
  estimate.access_bytes =
      (1.0 - estimate.hit_ratio) * inputs.miss_access_bytes;
  estimate.tuning_bytes =
      estimate.cached_ratio * inputs.validation_bytes +
      (1.0 - estimate.hit_ratio) * inputs.miss_tuning_bytes;
  return estimate;
}

}  // namespace airindex
