// Layer: 4 (analytical) — see docs/ARCHITECTURE.md for the layer map.
//
// Closed-form staleness model of the dynamic-dataset layer
// (src/dynamic): expected stale-read (dirty-query) probability and
// delta-read overhead as a function of update rate, mutation skew and
// compaction period. Verified sim-vs-model by tests/dynamic_test.cc.
//
// Per universe record i the mutation stream is a sequence of draws
// hitting it with probability q_i per draw (Zipf(update_zipf) by rank,
// uniform at 0), with each epoch issuing ~rate * N draws. Relative to
// the last compaction snapshot a record walks a five-state chain:
//
//   BC  in base, live, clean        BD  in base, live, dirty
//   BT  in base, dead (tombstone)   NL  off base, live (delta segment)
//   ND  off base, dead
//
// A hit on a live record deletes it with probability
// kDynamicModelDeleteFraction and updates it otherwise; a hit on a dead
// record re-inserts it. Compaction maps BD/NL -> BC and BT -> ND. A
// query is *dirty* when its record left BC; it pays a *delta read* when
// the answer lives in the delta segment — state NL for the patchable
// (B+/key-ordered) family, NL/BD/BT for the delta family, whose slots
// cannot be patched in place.
//
// This layer must not link src/dynamic, so the delete fraction is
// duplicated here; tests/dynamic_test.cc pins the two constants equal.
#ifndef AIRINDEX_ANALYTICAL_DYNAMIC_MODEL_H_
#define AIRINDEX_ANALYTICAL_DYNAMIC_MODEL_H_

#include <cstdint>

namespace airindex {

/// Mirror of kDynamicDeleteFraction (dynamic/mutation_log.h).
inline constexpr double kDynamicModelDeleteFraction = 0.1;

struct DynamicModelParams {
  /// Records in the universe dataset.
  int universe_size = 0;
  /// Per-record mutations per epoch (--update-rate); the per-epoch draw
  /// budget is rate * universe_size, fractional credit carried exactly
  /// like the MutationLog's accumulator.
  double update_rate = 0.0;
  /// Zipf skew of mutation targets (--update-zipf); 0 = uniform.
  double update_zipf = 0.0;
  /// Compaction period in epochs (--compact-every); 0 = never.
  int compact_every = 0;
  /// True for the B+/key-ordered family (kFlat/kOneM/kDistributed)
  /// whose base slots are patched in place.
  bool patchable = true;
  /// Workload skew of query popularity over record rank (zipf_theta).
  double workload_zipf = 0.0;
  /// Probability a query's key is on air (off-air queries are never
  /// dirty; the simulator counts them in dynamic.queries).
  double data_availability = 1.0;
  /// Epoch windows the run spans: queries are averaged over windows
  /// 0..epochs (a query in window e observes e processed epochs).
  std::int64_t epochs = 0;
};

struct DynamicModelResult {
  /// E[dynamic.dirty_queries / dynamic.queries].
  double dirty_probability = 0.0;
  /// E[dynamic.delta_reads / dynamic.queries].
  double delta_read_probability = 0.0;
  /// Query-popularity-weighted probability the queried record is live —
  /// the factor server updates shave off the effective availability.
  double live_fraction = 1.0;
};

/// Evaluates the five-state chain exactly (per-record transition
/// matrices powered by the integer per-epoch draw counts) and averages
/// over the run's epoch windows.
DynamicModelResult EvaluateDynamicModel(const DynamicModelParams& params);

}  // namespace airindex

#endif  // AIRINDEX_ANALYTICAL_DYNAMIC_MODEL_H_
