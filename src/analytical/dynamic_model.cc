// Layer: 4 (analytical) — see docs/ARCHITECTURE.md for the layer map.
#include "analytical/dynamic_model.h"

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "analytical/client_model.h"

namespace airindex {

namespace {

/// States of the per-record chain (header comment): in-base live clean,
/// in-base live dirty, in-base tombstone, off-base live, off-base dead.
enum { kBC = 0, kBD = 1, kBT = 2, kNL = 3, kND = 4 };

using Matrix = std::array<std::array<double, 5>, 5>;
using StateVector = std::array<double, 5>;

Matrix Identity() {
  Matrix m{};
  for (std::size_t i = 0; i < 5; ++i) m[i][i] = 1.0;
  return m;
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix out{};
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t k = 0; k < 5; ++k) {
      const double aik = a[i][k];
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < 5; ++j) out[i][j] += aik * b[k][j];
    }
  }
  return out;
}

Matrix Power(Matrix base, std::int64_t exponent) {
  Matrix out = Identity();
  while (exponent > 0) {
    if ((exponent & 1) != 0) out = Multiply(out, base);
    base = Multiply(base, base);
    exponent >>= 1;
  }
  return out;
}

/// One mutation draw as seen by record i: hit with probability q, a hit
/// on a live record deletes with probability delta (else updates), a
/// hit on a dead record re-inserts.
Matrix DrawMatrix(double q, double delta) {
  Matrix m{};
  m[kBC][kBC] = 1.0 - q;
  m[kBC][kBD] = q * (1.0 - delta);
  m[kBC][kBT] = q * delta;
  m[kBD][kBD] = 1.0 - q * delta;
  m[kBD][kBT] = q * delta;
  m[kBT][kBT] = 1.0 - q;
  m[kBT][kBD] = q;
  m[kNL][kNL] = 1.0 - q * delta;
  m[kNL][kND] = q * delta;
  m[kND][kND] = 1.0 - q;
  m[kND][kNL] = q;
  return m;
}

StateVector Apply(const StateVector& v, const Matrix& m) {
  StateVector out{};
  for (std::size_t i = 0; i < 5; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < 5; ++j) out[j] += vi * m[i][j];
  }
  return out;
}

/// Compaction resets the snapshot: live records (re-)enter the base
/// clean, dead ones leave it.
StateVector Compact(const StateVector& v) {
  StateVector out{};
  out[kBC] = v[kBC] + v[kBD] + v[kNL];
  out[kND] = v[kBT] + v[kND];
  return out;
}

}  // namespace

DynamicModelResult EvaluateDynamicModel(const DynamicModelParams& params) {
  DynamicModelResult result;
  const int n = params.universe_size;
  if (n <= 0 || params.update_rate <= 0.0) {
    result.dirty_probability = 0.0;
    result.delta_read_probability = 0.0;
    result.live_fraction = 1.0;
    return result;
  }
  const std::vector<double> popularity =
      ZipfPopularity(n, params.workload_zipf);
  const std::vector<double> target = ZipfPopularity(n, params.update_zipf);

  // Per-epoch draw budgets, replaying the MutationLog's fractional
  // credit accumulator exactly.
  std::vector<std::int64_t> draws(
      static_cast<std::size_t>(std::max<std::int64_t>(params.epochs, 0)));
  double credit = 0.0;
  for (std::int64_t& d : draws) {
    credit += params.update_rate * static_cast<double>(n);
    d = static_cast<std::int64_t>(std::floor(credit));
    credit -= static_cast<double>(d);
  }

  const double windows = static_cast<double>(params.epochs + 1);
  double dirty = 0.0;
  double delta_reads = 0.0;
  double live = 0.0;
  for (int i = 0; i < n; ++i) {
    const double q = target[static_cast<std::size_t>(i)];
    // Epoch transition matrices, cached per distinct draw count (the
    // accumulator emits at most two).
    std::vector<std::pair<std::int64_t, Matrix>> powers;
    const auto epoch_matrix = [&](std::int64_t d) -> const Matrix& {
      for (const auto& entry : powers) {
        if (entry.first == d) return entry.second;
      }
      powers.emplace_back(
          d, Power(DrawMatrix(q, kDynamicModelDeleteFraction), d));
      return powers.back().second;
    };
    StateVector v{};
    v[kBC] = 1.0;
    double dirty_i = 1.0 - v[kBC];
    double delta_i = params.patchable ? v[kNL] : v[kBD] + v[kBT] + v[kNL];
    double live_i = v[kBC] + v[kBD] + v[kNL];
    for (std::size_t e = 0; e < draws.size(); ++e) {
      v = Apply(v, epoch_matrix(draws[e]));
      if (params.compact_every > 0 &&
          (static_cast<std::int64_t>(e) + 1) % params.compact_every == 0) {
        v = Compact(v);
      }
      dirty_i += 1.0 - v[kBC];
      delta_i += params.patchable ? v[kNL] : v[kBD] + v[kBT] + v[kNL];
      live_i += v[kBC] + v[kBD] + v[kNL];
    }
    const double w = popularity[static_cast<std::size_t>(i)];
    dirty += w * dirty_i / windows;
    delta_reads += w * delta_i / windows;
    live += w * live_i / windows;
  }
  result.dirty_probability = params.data_availability * dirty;
  result.delta_read_probability = params.data_availability * delta_reads;
  result.live_fraction = live;
  return result;
}

}  // namespace airindex
