#include "analytical/models.h"

#include <algorithm>
#include <cmath>

namespace airindex {

namespace {

double Pow(double base, int exponent) {
  return std::pow(base, static_cast<double>(exponent));
}

}  // namespace

AnalyticalEstimate FlatModel(int num_records, const BucketGeometry& geometry) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const auto n = static_cast<double>(num_records);
  AnalyticalEstimate estimate;
  // Initial wait of half a bucket, then on average (N+1)/2 buckets until
  // the requested record has been read.
  estimate.access_time = (0.5 + (n + 1.0) / 2.0) * dt;
  estimate.tuning_time = estimate.access_time;
  return estimate;
}

BTreeModelShape BTreeShape(int num_records, const BucketGeometry& geometry) {
  const int fanout = geometry.index_fanout();
  BTreeModelShape shape;
  // k = ceil(log_n(Nr)): number of index levels of the complete tree.
  double capacity = 1.0;
  while (capacity < static_cast<double>(num_records)) {
    capacity *= fanout;
    ++shape.levels;
  }
  shape.levels = std::max(shape.levels, 1);
  // I = 1 + n + ... + n^(k-1) = (n^k - 1)/(n - 1).
  shape.index_buckets = (Pow(fanout, shape.levels) - 1.0) /
                        (static_cast<double>(fanout) - 1.0);
  return shape;
}

AnalyticalEstimate OneMModel(int num_records, const BucketGeometry& geometry,
                             int m) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const BTreeModelShape shape = BTreeShape(num_records, geometry);
  const auto nr = static_cast<double>(num_records);
  const double index_buckets = shape.index_buckets;
  const double cycle = static_cast<double>(m) * index_buckets + nr;

  AnalyticalEstimate estimate;
  // Ft + Pt + Wt with Pt = half the average segment period and Wt = half
  // the cycle, mirroring the paper's distributed-indexing derivation.
  estimate.access_time =
      0.5 * (1.0 + (index_buckets + nr / static_cast<double>(m)) + cycle) * dt;
  // Initial wait + first bucket + k index probes + download.
  estimate.tuning_time = (static_cast<double>(shape.levels) + 2.5) * dt;
  return estimate;
}

int OneMOptimalM(int num_records, const BucketGeometry& geometry) {
  const BTreeModelShape shape = BTreeShape(num_records, geometry);
  const int m = static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(num_records) / shape.index_buckets)));
  return std::clamp(m, 1, num_records);
}

AnalyticalEstimate DistributedModel(int num_records,
                                    const BucketGeometry& geometry, int r) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const auto n = static_cast<double>(geometry.index_fanout());
  const BTreeModelShape shape = BTreeShape(num_records, geometry);
  const int k = shape.levels;
  const auto nr = static_cast<double>(num_records);
  r = std::clamp(r, 0, k - 1);

  // Total index buckets: (n^(r+1) + n^k - n^r - n)/(n - 1); the cycle
  // also carries the Nr data buckets.
  const double index_buckets =
      (Pow(n, r + 1) + Pow(n, k) - Pow(n, r) - n) / (n - 1.0);
  const double total_buckets = index_buckets + nr;

  // Average index-segment length: non-replicated part (n^(k-r)-1)/(n-1)
  // plus replicated part (n^(r+1)-n)/(n^(r+1)-n^r); average data-segment
  // length Nr/n^r.
  const double avg_index_segment =
      (Pow(n, k - r) - 1.0) / (n - 1.0) +
      (r == 0 ? 0.0
              : (Pow(n, r + 1) - n) / (Pow(n, r + 1) - Pow(n, r)));
  const double avg_data_segment = nr / Pow(n, r);

  AnalyticalEstimate estimate;
  estimate.access_time =
      0.5 *
      (avg_index_segment + avg_data_segment + total_buckets + 1.0) * dt;
  estimate.tuning_time = (static_cast<double>(k) + 1.5) * dt;
  return estimate;
}

int DistributedOptimalR(int num_records, const BucketGeometry& geometry) {
  const BTreeModelShape shape = BTreeShape(num_records, geometry);
  int best_r = 0;
  double best_access = DistributedModel(num_records, geometry, 0).access_time;
  for (int r = 1; r < shape.levels; ++r) {
    const double access =
        DistributedModel(num_records, geometry, r).access_time;
    if (access < best_access) {
      best_access = access;
      best_r = r;
    }
  }
  return best_r;
}

BTreeLevelCounts ComputeBTreeLevels(int num_records, int fanout) {
  BTreeLevelCounts levels;
  // Bottom-up, mirroring BTree::Build: leaves first, then parents.
  std::vector<long long> bottom_up;
  long long count =
      (static_cast<long long>(num_records) + fanout - 1) / fanout;
  bottom_up.push_back(count);
  while (count > 1) {
    count = (count + fanout - 1) / fanout;
    bottom_up.push_back(count);
  }
  levels.height = static_cast<int>(bottom_up.size());
  levels.count_at_depth.assign(bottom_up.rbegin(), bottom_up.rend());
  return levels;
}

AnalyticalEstimate OneMModelExact(int num_records,
                                  const BucketGeometry& geometry, int m) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const BTreeLevelCounts levels =
      ComputeBTreeLevels(num_records, geometry.index_fanout());
  double index_buckets = 0;
  for (const long long c : levels.count_at_depth) {
    index_buckets += static_cast<double>(c);
  }
  const auto nr = static_cast<double>(num_records);
  const double cycle = static_cast<double>(m) * index_buckets + nr;

  AnalyticalEstimate estimate;
  estimate.access_time =
      0.5 * (1.0 + (index_buckets + nr / static_cast<double>(m)) + cycle) * dt;
  estimate.tuning_time = (static_cast<double>(levels.height) + 2.5) * dt;
  return estimate;
}

double OneMFleetAccessQuantile(int num_records,
                               const BucketGeometry& geometry, int m,
                               double q) {
  q = std::clamp(q, 0.0, 1.0);
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const BTreeLevelCounts levels =
      ComputeBTreeLevels(num_records, geometry.index_fanout());
  double index_buckets = 0;
  for (const long long c : levels.count_at_depth) {
    index_buckets += static_cast<double>(c);
  }
  const auto nr = static_cast<double>(num_records);
  // Segment wait a = U(0, S), data wait b = U(0, C); a <= b since a
  // segment never exceeds the cycle (m >= 1).
  const double a =
      (index_buckets + nr / static_cast<double>(m)) * dt;
  const double b = (static_cast<double>(m) * index_buckets + nr) * dt;
  // Shift so the trapezoid's mean (a + b) / 2 lands on the exact model
  // mean: the residue is the phase-independent part of the walk.
  const double shift =
      OneMModelExact(num_records, geometry, m).access_time -
      0.5 * (a + b);
  double z;
  if (a <= 0.0) {
    z = q * b;  // degenerate: single uniform
  } else if (q <= 0.5 * a / b) {
    z = std::sqrt(2.0 * a * b * q);  // rising edge
  } else if (q <= 1.0 - 0.5 * a / b) {
    z = q * b + 0.5 * a;  // flat top
  } else {
    z = a + b - std::sqrt(2.0 * a * b * (1.0 - q));  // falling edge
  }
  return shift + z;
}

int OneMOptimalMExact(int num_records, const BucketGeometry& geometry) {
  const BTreeLevelCounts levels =
      ComputeBTreeLevels(num_records, geometry.index_fanout());
  double index_buckets = 0;
  for (const long long c : levels.count_at_depth) {
    index_buckets += static_cast<double>(c);
  }
  const int m = static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(num_records) / index_buckets)));
  return std::clamp(m, 1, num_records);
}

AnalyticalEstimate DistributedModelExact(int num_records,
                                         const BucketGeometry& geometry,
                                         int r) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const BTreeLevelCounts levels =
      ComputeBTreeLevels(num_records, geometry.index_fanout());
  const int k = levels.height;
  r = std::clamp(r, 0, k - 1);
  const auto nr = static_cast<double>(num_records);

  // A replicated node at depth d < r is broadcast once per child, i.e.
  // count(d+1) occurrences in total; non-replicated nodes once each.
  double replicated_broadcasts = 0;
  for (int d = 0; d < r; ++d) {
    replicated_broadcasts +=
        static_cast<double>(levels.count_at_depth[static_cast<std::size_t>(
            d + 1)]);
  }
  double non_replicated = 0;
  for (int d = r; d < k; ++d) {
    non_replicated += static_cast<double>(
        levels.count_at_depth[static_cast<std::size_t>(d)]);
  }
  const double segments =
      static_cast<double>(levels.count_at_depth[static_cast<std::size_t>(r)]);
  const double total_index = replicated_broadcasts + non_replicated;
  const double total_buckets = total_index + nr;
  const double avg_index_segment = total_index / segments;
  const double avg_data_segment = nr / segments;

  AnalyticalEstimate estimate;
  estimate.access_time =
      0.5 * (avg_index_segment + avg_data_segment + total_buckets + 1.0) * dt;
  estimate.tuning_time = (static_cast<double>(k) + 1.5) * dt;
  return estimate;
}

int DistributedOptimalRExact(int num_records, const BucketGeometry& geometry) {
  const BTreeLevelCounts levels =
      ComputeBTreeLevels(num_records, geometry.index_fanout());
  int best_r = 0;
  double best_access =
      DistributedModelExact(num_records, geometry, 0).access_time;
  for (int r = 1; r < levels.height; ++r) {
    const double access =
        DistributedModelExact(num_records, geometry, r).access_time;
    if (access < best_access) {
      best_access = access;
      best_r = r;
    }
  }
  return best_r;
}

double ExpectedHashCollisions(int num_records, int allocated) {
  const auto nr = static_cast<double>(num_records);
  const auto na = static_cast<double>(allocated);
  // A slot is non-empty with probability 1-(1-1/Na)^Nr; every record
  // beyond the first in a slot is displaced.
  const double nonempty = na * (1.0 - std::pow(1.0 - 1.0 / na, nr));
  return nr - nonempty;
}

AnalyticalEstimate HashingModel(int num_records, int allocated, int colliding,
                                const BucketGeometry& geometry) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const auto nr = static_cast<double>(num_records);
  const auto na = static_cast<double>(allocated);
  const auto nc = static_cast<double>(colliding);
  const double n_total = na + nc;

  // The paper's three tune-in scenarios for reaching the hashing
  // position (Section 2.2).
  const double ht1 = (nc / n_total) * 0.5 * (nc + na);
  const double ht2 = 0.5 * (na / n_total) * (na / 3.0);
  const double ht3 = 0.5 * (na / n_total) * (na / 3.0 + nc + na / 3.0);
  const double ht = ht1 + ht2 + ht3;
  const double st = nc / 2.0;
  const double ct = nc / nr;

  AnalyticalEstimate estimate;
  estimate.access_time = (0.5 + ht + st + ct + 1.0) * dt;
  // Initial wait + first probe + hashing-position probe + overflow chain
  // + download, plus one extra probe when the record already passed.
  const double extra = (nc + 0.5 * nr) / (nc + nr);
  estimate.tuning_time = (0.5 + extra + ct + 3.0) * dt;
  return estimate;
}

double TheoreticalFalseDropRate(const BucketGeometry& geometry,
                                int bits_per_attribute, int num_attributes) {
  const double bits = static_cast<double>(geometry.signature_bytes) * 8.0;
  const auto s = static_cast<double>(bits_per_attribute);
  const double fields = static_cast<double>(num_attributes) + 1.0;
  const double set_fraction = 1.0 - std::pow(1.0 - 1.0 / bits, s * fields);
  return std::pow(set_fraction, s);
}

AnalyticalEstimate SignatureModel(int num_records,
                                  const BucketGeometry& geometry,
                                  double false_drop_rate) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const auto it = static_cast<double>(geometry.signature_bucket_bytes());
  const auto nr = static_cast<double>(num_records);

  AnalyticalEstimate estimate;
  estimate.access_time = 0.5 * (dt + it) * (nr + 1.0);
  const double false_drops = false_drop_rate * nr / 2.0;
  estimate.tuning_time = 0.5 * (nr + 1.0) * it + (false_drops + 0.5) * dt;
  return estimate;
}

namespace {

/// Re-alignment wait after a hop of cost C on a uniform-bucket channel:
/// the client comes back mid-bucket unless C is a bucket multiple.
double HopResidualWait(double bucket_bytes, double switch_cost) {
  const double rem =
      switch_cost - bucket_bytes * std::floor(switch_cost / bucket_bytes);
  return rem == 0.0 ? 0.0 : bucket_bytes - rem;
}

}  // namespace

AnalyticalEstimate DataPartitionedModel(const AnalyticalEstimate& per_partition,
                                        int num_channels,
                                        const BucketGeometry& geometry,
                                        Bytes switch_cost_bytes) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const auto n = static_cast<double>(num_channels);
  const auto c = static_cast<double>(switch_cost_bytes);
  const double p_hop = (n - 1.0) / n;
  const double res = HopResidualWait(dt, c);

  // One directory bucket on top of the partition walk; the partition
  // model's own expected initial wait (Dt/2) stands in for the
  // post-directory / post-hop re-alignment, corrected by the hop
  // residual.
  AnalyticalEstimate estimate;
  estimate.access_time = dt + per_partition.access_time + p_hop * (c + res);
  estimate.tuning_time = dt + per_partition.tuning_time + p_hop * res;
  return estimate;
}

AnalyticalEstimate IndexOnOneModel(int num_records,
                                   const BucketGeometry& geometry,
                                   int num_channels,
                                   Bytes switch_cost_bytes) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const auto c = static_cast<double>(switch_cost_bytes);
  const BTreeLevelCounts levels =
      ComputeBTreeLevels(num_records, geometry.index_fanout());
  double index_buckets = 0.0;
  for (const long long count : levels.count_at_depth) {
    index_buckets += static_cast<double>(count);
  }
  const double k = static_cast<double>(levels.height);
  const double partition_records = static_cast<double>(num_records) /
                                   static_cast<double>(num_channels - 1);

  // Initial wait + first bucket, wait for the preorder root (half the
  // index cycle), descent to the leaf (half the preorder on average),
  // one hop to the data channel, half the data cycle, download.
  AnalyticalEstimate estimate;
  estimate.access_time = 1.5 * dt + 0.5 * index_buckets * dt +
                         (0.5 * index_buckets * dt + dt) + c +
                         HopResidualWait(dt, c) +
                         0.5 * partition_records * dt + dt;
  // Listening: initial wait + first bucket + k index levels + download.
  estimate.tuning_time = 1.5 * dt + k * dt + dt;
  return estimate;
}

AnalyticalEstimate ReplicatedIndexModel(int num_records,
                                        const BucketGeometry& geometry,
                                        int num_channels,
                                        Bytes switch_cost_bytes) {
  const auto dt = static_cast<double>(geometry.data_bucket_bytes());
  const auto n = static_cast<double>(num_channels);
  const auto c = static_cast<double>(switch_cost_bytes);
  const BTreeLevelCounts levels =
      ComputeBTreeLevels(num_records, geometry.index_fanout());
  double index_buckets = 0.0;
  for (const long long count : levels.count_at_depth) {
    index_buckets += static_cast<double>(count);
  }
  const double k = static_cast<double>(levels.height);
  const double cycle =
      (index_buckets + static_cast<double>(num_records) / n) * dt;
  const double p_hop = (n - 1.0) / n;

  // Initial wait + first bucket, wait for the index start (half the
  // channel cycle), descent (half the preorder), the probabilistic hop,
  // the data wait (half a cycle; the data region is a cycle fraction on
  // the target channel), download.
  AnalyticalEstimate estimate;
  estimate.access_time = 1.5 * dt + 0.5 * cycle +
                         (0.5 * index_buckets * dt + dt) +
                         p_hop * (c + HopResidualWait(dt, c)) + 0.5 * cycle +
                         dt;
  estimate.tuning_time = 1.5 * dt + k * dt + dt;
  return estimate;
}


double SquareRootRuleBound(const std::vector<double>& popularity,
                           Bytes bucket_bytes) {
  const auto dt = static_cast<double>(bucket_bytes);
  double sqrt_sum = 0.0;
  for (const double p : popularity) sqrt_sum += std::sqrt(std::max(p, 0.0));
  return 0.5 * dt * sqrt_sum * sqrt_sum + dt;
}

double ScheduledScanAccessModel(
    const std::vector<std::vector<int>>& record_slots, std::int64_t num_slots,
    Bytes bucket_bytes, const std::vector<double>& popularity) {
  const auto dt = static_cast<double>(bucket_bytes);
  const auto slots = static_cast<double>(num_slots);
  double expected = 0.0;
  for (std::size_t i = 0;
       i < record_slots.size() && i < popularity.size(); ++i) {
    const std::vector<int>& occ = record_slots[i];
    if (occ.empty()) continue;
    // Cyclic gap lengths between consecutive occurrences; a client whose
    // boundary phase lands in a gap of L slots reads 1..L buckets with
    // equal probability.
    double gap_sum = 0.0;
    for (std::size_t j = 0; j < occ.size(); ++j) {
      const std::int64_t next =
          j + 1 < occ.size() ? occ[j + 1]
                             : occ.front() + num_slots;
      const double gap = static_cast<double>(next - occ[j]);
      gap_sum += gap * (gap - 1.0) / 2.0;
    }
    expected += popularity[i] * (0.5 * dt + dt * gap_sum / slots + dt);
  }
  return expected;
}

}  // namespace airindex
