// Layer: 4 (dynamic) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_DYNAMIC_MUTATION_LOG_H_
#define AIRINDEX_DYNAMIC_MUTATION_LOG_H_

#include <cstdint>
#include <vector>

#include "des/random.h"
#include "des/zipf.h"

namespace airindex {

/// Fraction of draws on a live record that delete it instead of
/// updating it. The analytical staleness model (analytical/
/// dynamic_model.h) duplicates this constant — analytical must not link
/// the dynamic layer — and a test pins the two values equal. The
/// steady-state live fraction it induces is 1 / (1 + delta).
inline constexpr double kDynamicDeleteFraction = 0.1;

/// One resolved server-side mutation.
struct MutationOp {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind = Kind::kUpdate;
  /// Index of the mutated record in the *universe* dataset (the full
  /// synthetic dataset; liveness decides what is actually on air).
  int record_index = 0;
  /// Record version after this op (versions start at 0 and every
  /// applied op bumps the target's version by one).
  std::int64_t version = 0;
};

/// Deterministic server-side mutation stream over a fixed record
/// universe.
///
/// Time is sliced into epochs (one initial broadcast cycle each; see
/// DynamicRuntime). Every epoch draws `rate * universe_size` target
/// records — uniformly, or Zipf(zipf_theta) by record rank — and
/// resolves each draw against current liveness: a dead record is
/// re-inserted, a live one is deleted with probability
/// kDynamicDeleteFraction (never below 3 live records) and updated
/// otherwise. Fractional per-epoch draw budgets accumulate exactly, so
/// the long-run rate is honoured for any `rate`.
///
/// The whole stream is a pure function of the constructor arguments.
/// The replication engine gives each replication its own log seeded
/// from the replication seed, which is what keeps --jobs bit-identity:
/// a replication's mutation history never depends on which worker runs
/// it or what ran before it.
class MutationLog {
 public:
  MutationLog(int universe_size, double rate, double zipf_theta,
              std::uint64_t seed);

  /// Generates and applies the next epoch's mutations. The returned
  /// buffer is valid until the next call.
  const std::vector<MutationOp>& NextEpoch();

  /// Liveness / version of a universe record under everything emitted
  /// so far.
  bool live(int record_index) const {
    return live_[static_cast<std::size_t>(record_index)] != 0;
  }
  std::int64_t version(int record_index) const {
    return versions_[static_cast<std::size_t>(record_index)];
  }

  int universe_size() const { return static_cast<int>(live_.size()); }
  int live_count() const { return live_count_; }
  std::int64_t epochs() const { return epochs_; }

 private:
  double rate_;
  Rng rng_;
  std::vector<ZipfDistribution> zipf_;  // empty = uniform targeting
  std::vector<std::uint8_t> live_;
  std::vector<std::int64_t> versions_;
  int live_count_ = 0;
  /// Fractional draw budget carried between epochs.
  double credit_ = 0.0;
  std::int64_t epochs_ = 0;
  std::vector<MutationOp> buffer_;
};

}  // namespace airindex

#endif  // AIRINDEX_DYNAMIC_MUTATION_LOG_H_
