// Layer: 4 (dynamic) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_DYNAMIC_DYNAMIC_PROGRAM_H_
#define AIRINDEX_DYNAMIC_DYNAMIC_PROGRAM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "broadcast/geometry.h"
#include "common/result.h"
#include "data/dataset.h"
#include "dynamic/mutation_log.h"
#include "schemes/access.h"
#include "schemes/scheme.h"

namespace airindex {

/// dynamic.* accounting of one run (docs/METRICS.md). stale_reads is
/// not here: it is the session client's invalidation count, attached at
/// snapshot time by the simulator.
struct DynamicCounters {
  /// Broadcast epochs processed; every epoch is either patched in place
  /// or compacted (full rebuild), so patched + rebuilt == cycles.
  std::int64_t cycles = 0;
  std::int64_t patched_cycles = 0;
  std::int64_t rebuilt_cycles = 0;
  /// Mutation stream totals; inserts + deletes + updates == mutations.
  std::int64_t mutations = 0;
  std::int64_t inserts = 0;
  std::int64_t deletes = 0;
  std::int64_t updates = 0;
  /// B+-family slot recycling: a delete of an in-base record frees its
  /// slot (push), a later re-insert reclaims it (pop). pops <= pushes,
  /// pushes <= deletes, pops <= inserts.
  std::int64_t freelist_pushes = 0;
  std::int64_t freelist_pops = 0;
  /// Mutations that land in the appended delta segment instead of being
  /// patched into a base slot.
  std::int64_t delta_appends = 0;
  /// Query-side accounting: delta_reads <= dirty_queries <= queries,
  /// and delta_read_bytes == 0 iff delta_reads == 0.
  std::int64_t queries = 0;
  std::int64_t dirty_queries = 0;
  std::int64_t delta_reads = 0;
  std::int64_t delta_read_bytes = 0;
};

/// Mutable-dataset overlay over one immutable single-channel broadcast
/// program.
///
/// The runtime never touches the shared base program (replications walk
/// it concurrently). Instead it tracks, per universe record, whether
/// the record occupies a base slot (`in_base`), the version snapshotted
/// into the live program (`base_version`), and — for the B+ family —
/// whether its slot sits on the free list. Mutations arrive from a
/// MutationLog one epoch (one initial broadcast cycle) at a time,
/// lazily, as the simulation clock advances.
///
/// Maintenance discipline per scheme family:
///  - Patchable (kFlat, kOneM, kDistributed — the B+/key-ordered
///    family): in-base updates are patched into their slot, in-base
///    deletes become in-place tombstones whose slot goes on a free list,
///    re-inserts pop the free list. Only records born after the last
///    compaction live in the appended delta segment.
///  - Delta (hashing / signature / disks family, whose layouts are
///    content-addressed and cannot be patched in place): every mutation
///    appends to the delta segment.
///
/// A query whose answer lives in the delta segment finishes its base
/// walk, waits for the end of the current cycle (the delta segment
/// rides at the cycle boundary), and reads one delta-directory bucket
/// plus — when the record is live — one data bucket. Both extra buckets
/// are charged to tuning as well as access: the client cannot doze
/// through an unindexed segment. The delta segment is modeled as a side
/// band: clean base walks do not dilate. Every `compact_every` epochs
/// the runtime materializes the live dataset and rebuilds the program
/// from scratch, resetting the overlay.
class DynamicRuntime {
 public:
  /// Builds a ready-to-query program for the compaction path; defaults
  /// to BuildScheme. Tests inject a ProgramCache-backed builder here to
  /// pin cache correctness under mutation (the dynamic layer itself
  /// must not depend on core).
  using SchemeBuilder =
      std::function<Result<std::unique_ptr<BroadcastScheme>>(
          SchemeKind kind, std::shared_ptr<const Dataset> dataset,
          const BucketGeometry& geometry, const SchemeParams& params)>;

  struct Params {
    SchemeKind kind = SchemeKind::kFlat;
    /// The full record universe (the dataset the base program was built
    /// from); queries and mutations are resolved against its key space.
    std::shared_ptr<const Dataset> universe;
    BucketGeometry geometry;
    SchemeParams scheme_params;
    /// Per-record mutations per epoch (--update-rate); <= 0 keeps the
    /// runtime inactive.
    double update_rate = 0.0;
    /// Zipf skew of mutation targets (--update-zipf); 0 = uniform.
    double update_zipf = 0.0;
    /// Full rebuild every this many epochs (--compact-every); 0 never
    /// compacts.
    int compact_every = 0;
    /// Mutation-stream seed (per replication: derived from the
    /// replication seed, which preserves --jobs bit-identity).
    std::uint64_t seed = 0;
    /// Epoch length in bytes — the *initial* base cycle; fixed for the
    /// run even when compaction changes the live cycle length.
    Bytes epoch_bytes = 0;
    /// The shared immutable base program (not owned; must outlive the
    /// runtime).
    const BroadcastScheme* base_scheme = nullptr;
    /// Compaction build hook; null = BuildScheme.
    SchemeBuilder builder;
  };

  /// The B+/key-ordered family that supports in-place node patching.
  static bool PatchableScheme(SchemeKind kind);

  DynamicRuntime() = default;

  /// Activates the runtime. Requires a universe, a base scheme and a
  /// positive epoch length when update_rate > 0.
  Status Start(Params params);

  bool active() const { return active_; }

  /// Processes every epoch that has fully elapsed by absolute time
  /// `now`. Callers advance time monotonically (the event queue hands
  /// out arrivals in time order).
  void AdvanceTo(Bytes now);

  /// The client access protocol against the live (patched) program:
  /// base walk plus the delta-segment read when the answer has diverged
  /// from the base snapshot. Advances the mutation clock to `tune_in`.
  AccessResult Access(std::string_view key, Bytes tune_in);

  /// Whether a query for `key` issued at `now` should find its record:
  /// the generator's on-air draw gated by current liveness.
  bool ExpectedOnAir(bool generated_on_air, std::string_view key, Bytes now);

  /// Current server version of a universe record (DynamicVersionSource
  /// for the session client's invalidation layer). Advances the clock.
  std::int64_t VersionAt(int record_index, Bytes now);

  /// The dataset of currently-live records with their mutated
  /// attributes — what a from-scratch rebuild would broadcast.
  Result<std::shared_ptr<const Dataset>> MaterializeDataset() const;

  /// Forces a compaction now (test hook; the periodic policy uses the
  /// same path). Returns false when the rebuild failed, in which case
  /// the previous live program stays in place.
  bool ForceCompact();

  const DynamicCounters& counters() const { return counters_; }
  /// Rebuild attempts that failed (the epoch then counts as patched).
  std::int64_t compaction_failures() const { return compaction_failures_; }
  /// The program queries currently walk (base until the first
  /// compaction).
  const BroadcastScheme& live_scheme() const { return *live_scheme_; }
  const MutationLog& log() const { return *log_; }

 private:
  void ApplyEpoch(const std::vector<MutationOp>& ops);

  bool active_ = false;
  bool patchable_ = false;
  SchemeKind kind_ = SchemeKind::kFlat;
  std::shared_ptr<const Dataset> universe_;
  BucketGeometry geometry_;
  SchemeParams scheme_params_;
  int compact_every_ = 0;
  Bytes epoch_bytes_ = 0;
  SchemeBuilder builder_;

  const BroadcastScheme* live_scheme_ = nullptr;
  /// Owned replacements after a compaction; live_scheme_ aliases
  /// owned_scheme_ once set.
  std::unique_ptr<BroadcastScheme> owned_scheme_;
  std::shared_ptr<const Dataset> owned_dataset_;

  std::unique_ptr<MutationLog> log_;
  std::int64_t epochs_done_ = 0;

  /// Per-universe-record overlay state relative to the live program.
  std::vector<std::uint8_t> in_base_;
  std::vector<std::int64_t> base_version_;
  std::vector<std::uint8_t> slot_free_;

  DynamicCounters counters_;
  std::int64_t compaction_failures_ = 0;
};

}  // namespace airindex

#endif  // AIRINDEX_DYNAMIC_DYNAMIC_PROGRAM_H_
