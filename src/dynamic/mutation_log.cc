// Layer: 4 (dynamic) — see docs/ARCHITECTURE.md for the layer map.
#include "dynamic/mutation_log.h"

#include <cmath>

namespace airindex {

MutationLog::MutationLog(int universe_size, double rate, double zipf_theta,
                         std::uint64_t seed)
    : rate_(rate),
      rng_(seed),
      live_(static_cast<std::size_t>(universe_size), 1),
      versions_(static_cast<std::size_t>(universe_size), 0),
      live_count_(universe_size) {
  if (zipf_theta > 0.0 && universe_size > 0) {
    zipf_.emplace_back(universe_size, zipf_theta);
  }
}

const std::vector<MutationOp>& MutationLog::NextEpoch() {
  buffer_.clear();
  const auto n = static_cast<std::uint64_t>(live_.size());
  credit_ += rate_ * static_cast<double>(n);
  const auto draws = static_cast<std::int64_t>(std::floor(credit_));
  credit_ -= static_cast<double>(draws);
  for (std::int64_t d = 0; d < draws && n > 0; ++d) {
    const int r = zipf_.empty()
                      ? static_cast<int>(rng_.NextBounded(n))
                      : zipf_.front().Sample(&rng_);
    MutationOp op;
    op.record_index = r;
    const auto index = static_cast<std::size_t>(r);
    if (live_[index] == 0) {
      op.kind = MutationOp::Kind::kInsert;
      live_[index] = 1;
      ++live_count_;
    } else if (live_count_ > 2 &&
               rng_.NextDouble() < kDynamicDeleteFraction) {
      op.kind = MutationOp::Kind::kDelete;
      live_[index] = 0;
      --live_count_;
    } else {
      op.kind = MutationOp::Kind::kUpdate;
    }
    op.version = ++versions_[index];
    buffer_.push_back(op);
  }
  ++epochs_;
  return buffer_;
}

}  // namespace airindex
