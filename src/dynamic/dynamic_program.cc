// Layer: 4 (dynamic) — see docs/ARCHITECTURE.md for the layer map.
#include "dynamic/dynamic_program.h"

#include <string>
#include <utility>

#include "data/record.h"
#include "des/random.h"

namespace airindex {

namespace {

/// Deterministic mutated attribute value: same width as the original,
/// lowercase letters, derived from (original value, record version).
/// Version 0 is the original; any later version produces a different
/// string, which is what makes a mutated dataset change its content
/// fingerprint (core/program_cache.h, DatasetFingerprint).
std::string MutatedAttribute(const std::string& attribute,
                             std::int64_t version) {
  if (version == 0) return attribute;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : attribute) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  h ^= static_cast<std::uint64_t>(version) * 0x9e3779b97f4a7c15ULL;
  std::string out(attribute.size(), 'a');
  for (char& c : out) {
    h = Mix64(h);
    c = static_cast<char>('a' + (h % 26));
  }
  return out;
}

}  // namespace

bool DynamicRuntime::PatchableScheme(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kFlat:
    case SchemeKind::kOneM:
    case SchemeKind::kDistributed:
      return true;
    default:
      return false;
  }
}

Status DynamicRuntime::Start(Params params) {
  if (params.update_rate <= 0.0) {
    active_ = false;
    return Status::Ok();
  }
  if (params.universe == nullptr || params.universe->size() <= 0) {
    return Status::InvalidArgument("dynamic runtime needs a universe dataset");
  }
  if (params.base_scheme == nullptr) {
    return Status::InvalidArgument("dynamic runtime needs a base program");
  }
  if (params.epoch_bytes <= 0) {
    return Status::InvalidArgument("dynamic runtime needs a positive epoch");
  }
  kind_ = params.kind;
  patchable_ = PatchableScheme(kind_);
  universe_ = std::move(params.universe);
  geometry_ = params.geometry;
  scheme_params_ = params.scheme_params;
  compact_every_ = params.compact_every;
  epoch_bytes_ = params.epoch_bytes;
  builder_ = params.builder
                 ? std::move(params.builder)
                 : [](SchemeKind kind, std::shared_ptr<const Dataset> dataset,
                      const BucketGeometry& geometry,
                      const SchemeParams& scheme_params) {
                     return BuildScheme(kind, std::move(dataset), geometry,
                                        scheme_params);
                   };
  live_scheme_ = params.base_scheme;
  owned_scheme_.reset();
  owned_dataset_.reset();
  log_ = std::make_unique<MutationLog>(universe_->size(), params.update_rate,
                                       params.update_zipf, params.seed);
  epochs_done_ = 0;
  const auto n = static_cast<std::size_t>(universe_->size());
  in_base_.assign(n, 1);
  base_version_.assign(n, 0);
  slot_free_.assign(n, 0);
  counters_ = DynamicCounters();
  compaction_failures_ = 0;
  active_ = true;
  return Status::Ok();
}

void DynamicRuntime::AdvanceTo(Bytes now) {
  if (!active_) return;
  const std::int64_t target = now / epoch_bytes_;
  while (epochs_done_ < target) {
    ApplyEpoch(log_->NextEpoch());
    ++epochs_done_;
    ++counters_.cycles;
    const bool compact =
        compact_every_ > 0 && epochs_done_ % compact_every_ == 0;
    if (compact && ForceCompact()) {
      ++counters_.rebuilt_cycles;
    } else {
      ++counters_.patched_cycles;
    }
  }
}

void DynamicRuntime::ApplyEpoch(const std::vector<MutationOp>& ops) {
  for (const MutationOp& op : ops) {
    ++counters_.mutations;
    const auto r = static_cast<std::size_t>(op.record_index);
    // A mutation is patched into its base slot when the record occupies
    // one and the scheme family supports in-place patching; everything
    // else rides the appended delta segment.
    bool append = true;
    switch (op.kind) {
      case MutationOp::Kind::kInsert:
        ++counters_.inserts;
        if (patchable_ && in_base_[r] != 0) {
          if (slot_free_[r] != 0) {
            slot_free_[r] = 0;
            ++counters_.freelist_pops;
          }
          append = false;
        }
        break;
      case MutationOp::Kind::kDelete:
        ++counters_.deletes;
        if (patchable_ && in_base_[r] != 0) {
          if (slot_free_[r] == 0) {
            slot_free_[r] = 1;
            ++counters_.freelist_pushes;
          }
          append = false;
        }
        break;
      case MutationOp::Kind::kUpdate:
        ++counters_.updates;
        if (patchable_ && in_base_[r] != 0) append = false;
        break;
    }
    if (append) ++counters_.delta_appends;
  }
}

AccessResult DynamicRuntime::Access(std::string_view key, Bytes tune_in) {
  AdvanceTo(tune_in);
  ++counters_.queries;
  AccessResult result = live_scheme_->Access(key, tune_in);
  const int r = universe_->FindIndex(key);
  if (r < 0) return result;
  const bool live = log_->live(r);
  const std::int64_t version = log_->version(r);
  const auto index = static_cast<std::size_t>(r);
  if (version != base_version_[index]) ++counters_.dirty_queries;
  // The record's answer lives in the delta segment when it exists
  // outside the base snapshot (born since the last compaction), or — for
  // the non-patchable families — when any mutation touched it since the
  // snapshot (their slots cannot be rewritten in place).
  const bool divergent =
      (live && in_base_[index] == 0) ||
      (!patchable_ && in_base_[index] != 0 && version != base_version_[index]);
  if (divergent) {
    // Finish the base walk, wait for the cycle boundary where the delta
    // segment rides, then read the delta directory and — when live —
    // the record itself. The unindexed segment cannot be dozed through,
    // so the extra buckets charge tuning as well as access.
    const Bytes cycle = live_scheme_->channel().cycle_bytes();
    const Bytes end = tune_in + result.access_time;
    const Bytes wait = cycle > 0 ? (cycle - (end % cycle)) % cycle : 0;
    const Bytes extra = geometry_.index_bucket_bytes() +
                        (live ? geometry_.data_bucket_bytes() : 0);
    result.found = live;
    result.access_time += wait + extra;
    result.tuning_time += extra;
    result.probes += live ? 2 : 1;
    ++result.index_probes;
    ++counters_.delta_reads;
    counters_.delta_read_bytes += extra;
    return result;
  }
  if (patchable_ && in_base_[index] != 0 && !live) {
    // In-place tombstone: the walk cost stands, the record does not.
    result.found = false;
  }
  return result;
}

bool DynamicRuntime::ExpectedOnAir(bool generated_on_air,
                                   std::string_view key, Bytes now) {
  AdvanceTo(now);
  if (!generated_on_air) return false;
  const int r = universe_->FindIndex(key);
  return r >= 0 && log_->live(r);
}

std::int64_t DynamicRuntime::VersionAt(int record_index, Bytes now) {
  AdvanceTo(now);
  if (record_index < 0 || record_index >= universe_->size()) return 0;
  return log_->version(record_index);
}

Result<std::shared_ptr<const Dataset>> DynamicRuntime::MaterializeDataset()
    const {
  if (!active_) {
    return Status::FailedPrecondition("dynamic runtime is inactive");
  }
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(log_->live_count()));
  for (int r = 0; r < universe_->size(); ++r) {
    if (!log_->live(r)) continue;
    const Record& original = universe_->record(r);
    Record record;
    record.id = static_cast<std::uint64_t>(records.size());
    record.key = original.key;
    record.attributes.reserve(original.attributes.size());
    const std::int64_t version = log_->version(r);
    for (const std::string& attribute : original.attributes) {
      record.attributes.push_back(MutatedAttribute(attribute, version));
    }
    records.push_back(std::move(record));
  }
  Result<Dataset> dataset = Dataset::FromRecords(std::move(records));
  if (!dataset.ok()) return dataset.status();
  return std::make_shared<const Dataset>(std::move(dataset).value());
}

bool DynamicRuntime::ForceCompact() {
  if (!active_) return false;
  Result<std::shared_ptr<const Dataset>> dataset = MaterializeDataset();
  if (!dataset.ok()) {
    ++compaction_failures_;
    return false;
  }
  Result<std::unique_ptr<BroadcastScheme>> built =
      builder_(kind_, dataset.value(), geometry_, scheme_params_);
  if (!built.ok()) {
    // Keep the previous live program (and its snapshot state) — a
    // failed rebuild degrades to more patching, never to a broken
    // channel.
    ++compaction_failures_;
    return false;
  }
  owned_scheme_ = std::move(built).value();
  owned_dataset_ = std::move(dataset).value();
  live_scheme_ = owned_scheme_.get();
  for (int r = 0; r < universe_->size(); ++r) {
    const auto index = static_cast<std::size_t>(r);
    in_base_[index] = log_->live(r) ? 1 : 0;
    base_version_[index] = log_->version(r);
    slot_free_[index] = 0;
  }
  return true;
}

}  // namespace airindex
