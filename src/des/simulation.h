// Layer: 1 (des) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_DES_SIMULATION_H_
#define AIRINDEX_DES_SIMULATION_H_

#include <functional>

#include "common/types.h"
#include "des/event_queue.h"

namespace airindex {

/// The discrete-event simulation loop: a clock plus an event queue.
///
/// The testbed (paper Section 3) treats "the broadcasting of each data
/// item, generation of each user request and processing of the request"
/// as separate events. Simulation owns the clock; components schedule
/// callbacks at future times and the loop runs them in order.
class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (bytes broadcast since the run started).
  Bytes now() const { return now_; }

  /// Schedules `callback` to run `delay` units from now (delay >= 0).
  EventId ScheduleIn(Bytes delay, EventQueue::Callback callback) {
    return queue_.Schedule(now_ + delay, std::move(callback));
  }

  /// Schedules `callback` at absolute time `when` (>= now()).
  EventId ScheduleAt(Bytes when, EventQueue::Callback callback) {
    return queue_.Schedule(when, std::move(callback));
  }

  /// Cancels a pending event; no-op if already fired or cancelled.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Runs events until the queue drains or `stop_requested` returns true.
  /// The predicate is checked between events. Returns the number of events
  /// executed.
  std::size_t Run(const std::function<bool()>& stop_requested = nullptr);

  /// Runs events until simulated time would exceed `until` (events at
  /// exactly `until` still run). Returns the number of events executed.
  std::size_t RunUntil(Bytes until);

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed over every Run/RunUntil call on this
  /// simulation — the "events processed" figure the testbed reports.
  std::size_t events_processed() const { return events_processed_; }

 private:
  EventQueue queue_;
  Bytes now_ = 0;
  std::size_t events_processed_ = 0;
};

}  // namespace airindex

#endif  // AIRINDEX_DES_SIMULATION_H_
