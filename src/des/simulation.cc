#include "des/simulation.h"

namespace airindex {

std::size_t Simulation::Run(const std::function<bool()>& stop_requested) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    if (stop_requested && stop_requested()) break;
    now_ = queue_.PeekTime();
    queue_.RunNext();
    ++executed;
  }
  events_processed_ += executed;
  return executed;
}

std::size_t Simulation::RunUntil(Bytes until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.PeekTime() <= until) {
    now_ = queue_.PeekTime();
    queue_.RunNext();
    ++executed;
  }
  if (now_ < until) now_ = until;
  events_processed_ += executed;
  return executed;
}

}  // namespace airindex
