#include "des/event_queue.h"

#include <utility>

namespace airindex {

EventId EventQueue::Schedule(Bytes when, Callback callback) {
  const EventId id = next_id_++;
  cancelled_.push_back(false);
  heap_.push(Entry{when, id, std::move(callback)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) return false;
  cancelled_[id] = true;
  --live_count_;
  return true;
}

void EventQueue::SkipDead() {
  while (!heap_.empty() && cancelled_[heap_.top().id]) {
    heap_.pop();
  }
}

Bytes EventQueue::PeekTime() {
  SkipDead();
  return heap_.top().when;
}

Bytes EventQueue::RunNext() {
  SkipDead();
  // Move the entry out before running: the callback may schedule more
  // events and reshuffle the heap.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  cancelled_[entry.id] = true;
  --live_count_;
  entry.callback();
  return entry.when;
}

}  // namespace airindex
