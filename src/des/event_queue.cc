#include "des/event_queue.h"

#include <utility>

namespace airindex {

EventId EventQueue::Schedule(Bytes when, Callback callback) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{0, true});
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].live = true;
  }
  const std::uint32_t generation = slots_[slot].generation;
  heap_.push(Entry{when, next_seq_++, slot, generation, std::move(callback)});
  ++live_count_;
  return (static_cast<EventId>(generation) << 32) | slot;
}

bool EventQueue::Cancel(EventId id) {
  const auto slot_index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot_index >= slots_.size()) return false;
  Slot& slot = slots_[slot_index];
  if (!slot.live || slot.generation != generation) return false;
  // Advancing the generation invalidates both the caller's id and the
  // entry still sitting in the heap (reaped lazily by SkipDead), so the
  // slot can be recycled immediately.
  slot.live = false;
  ++slot.generation;
  free_slots_.push_back(slot_index);
  --live_count_;
  return true;
}

void EventQueue::SkipDead() {
  while (!heap_.empty() && IsDead(heap_.top())) {
    heap_.pop();
  }
}

Bytes EventQueue::PeekTime() {
  SkipDead();
  return heap_.top().when;
}

Bytes EventQueue::RunNext() {
  SkipDead();
  // Move the entry out before running: the callback may schedule more
  // events and reshuffle the heap.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  Slot& slot = slots_[entry.slot];
  slot.live = false;
  ++slot.generation;  // the fired event's id is now stale
  free_slots_.push_back(entry.slot);
  --live_count_;
  entry.callback();
  return entry.when;
}

}  // namespace airindex
