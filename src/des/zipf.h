#ifndef AIRINDEX_DES_ZIPF_H_
#define AIRINDEX_DES_ZIPF_H_

#include <vector>

#include "des/random.h"

namespace airindex {

/// Zipf(theta) sampler over ranks 0..n-1 (rank 0 hottest):
/// P(rank k) proportional to 1 / (k+1)^theta. theta = 0 degenerates to
/// the uniform distribution; theta around 0.8–1.0 models the skewed
/// request popularity used throughout the broadcast-scheduling
/// literature (Acharya et al.'s broadcast disks).
///
/// Sampling is inverse-CDF over a precomputed cumulative table:
/// O(n) construction, O(log n) per draw, exact probabilities.
class ZipfDistribution {
 public:
  /// `n` >= 1 ranks, `theta` >= 0.
  ZipfDistribution(int n, double theta);

  /// Draws a rank in [0, n).
  int Sample(Rng* rng) const;

  /// Probability of rank k.
  double Probability(int k) const;

  int n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int n_;
  double theta_;
  std::vector<double> cumulative_;
};

}  // namespace airindex

#endif  // AIRINDEX_DES_ZIPF_H_
