#ifndef AIRINDEX_DES_EVENT_QUEUE_H_
#define AIRINDEX_DES_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace airindex {

/// Handle identifying a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// A time-ordered queue of callbacks — the heart of the discrete-event
/// engine. Ties are broken by insertion order (FIFO among simultaneous
/// events), which keeps runs deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `callback` to fire at absolute simulated time `when`.
  /// `when` must not be in the past relative to the last popped event.
  /// Returns an id usable with Cancel().
  EventId Schedule(Bytes when, Callback callback);

  /// Cancels a scheduled event. Cancelling an already-fired or unknown id
  /// is a no-op. Returns true if the event was pending and is now dead.
  bool Cancel(EventId id);

  /// True if no live events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of live (scheduled, uncancelled, unfired) events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Must not be called when empty.
  Bytes PeekTime();

  /// Pops and runs the earliest live event; returns its time.
  /// Must not be called when empty.
  Bytes RunNext();

 private:
  struct Entry {
    Bytes when;
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // ids are monotone, so this is FIFO.
    }
  };

  /// Drops cancelled entries from the front of the heap.
  void SkipDead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<bool> cancelled_;  // indexed by EventId
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace airindex

#endif  // AIRINDEX_DES_EVENT_QUEUE_H_
