#ifndef AIRINDEX_DES_EVENT_QUEUE_H_
#define AIRINDEX_DES_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.h"
#include "des/inline_function.h"

namespace airindex {

/// Handle identifying a scheduled event, usable for cancellation.
/// Encodes (slot, generation); stale handles — fired, cancelled, or from
/// another queue — are rejected by Cancel.
using EventId = std::uint64_t;

/// A time-ordered queue of callbacks — the heart of the discrete-event
/// engine. Ties are broken by insertion order (FIFO among simultaneous
/// events), which keeps runs deterministic.
///
/// Two properties matter for the simulation hot path:
///
///  - Callbacks are stored in a small-buffer InlineFunction, so
///    scheduling a closure of at most Callback capacity bytes (the
///    testbed's arrival and completion events, statically asserted in
///    core/simulator.cc) never allocates.
///  - Cancellation bookkeeping is a slot/generation live-set whose size
///    is O(peak live events), not O(events ever scheduled): each live
///    event owns a slot, and firing or cancelling bumps the slot's
///    generation (invalidating the old id) and recycles it.
class EventQueue {
 public:
  using Callback = InlineFunction<void()>;

  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `callback` to fire at absolute simulated time `when`.
  /// `when` must not be in the past relative to the last popped event.
  /// Returns an id usable with Cancel().
  EventId Schedule(Bytes when, Callback callback);

  /// Cancels a scheduled event. Cancelling an already-fired or unknown id
  /// is a no-op. Returns true if the event was pending and is now dead.
  bool Cancel(EventId id);

  /// True if no live events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of live (scheduled, uncancelled, unfired) events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Must not be called when empty.
  Bytes PeekTime();

  /// Pops and runs the earliest live event; returns its time.
  /// Must not be called when empty.
  Bytes RunNext();

  /// Number of bookkeeping slots ever allocated — the peak number of
  /// simultaneously live events, NOT the number of events ever
  /// scheduled. Exposed so tests can assert that long drains keep
  /// memory bounded.
  std::size_t slot_capacity() const { return slots_.size(); }

 private:
  struct Entry {
    Bytes when;
    /// Monotone sequence number; ids are recycled, so FIFO tie-breaking
    /// needs its own counter.
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // seq is monotone, so this is FIFO.
    }
  };
  /// One live-set slot; `generation` advances every time the slot's
  /// event dies, so stale EventIds (and stale heap entries) miscompare.
  struct Slot {
    std::uint32_t generation = 0;
    bool live = false;
  };

  bool IsDead(const Entry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return !slot.live || slot.generation != entry.generation;
  }

  /// Drops cancelled entries from the front of the heap (their slots
  /// were already recycled by Cancel).
  void SkipDead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace airindex

#endif  // AIRINDEX_DES_EVENT_QUEUE_H_
