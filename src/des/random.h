#ifndef AIRINDEX_DES_RANDOM_H_
#define AIRINDEX_DES_RANDOM_H_

#include <cstdint>

namespace airindex {

/// Mixes a 64-bit value into a well-distributed 64-bit hash (splitmix64
/// finalizer). Used both for seeding and as the hash function of the
/// simple-hashing scheme.
std::uint64_t Mix64(std::uint64_t x);

/// Seed of replication `replication_id` under `master_seed`:
///
///   seed = master_seed ^ splitmix64(replication_id)
///
/// Every replication of an experiment gets its own xoshiro256++ stream
/// seeded this way, so the replication's request sequence depends only on
/// (master_seed, replication_id) — never on which worker thread runs it
/// or in what order. That is what lets the parallel replication engine
/// produce bit-identical statistics for any --jobs value. The splitmix64
/// mix keeps adjacent ids far apart in seed space; Rng then expands the
/// seed through four more splitmix64 steps, so streams of adjacent
/// replications start from unrelated internal states.
std::uint64_t ReplicationSeed(std::uint64_t master_seed,
                              std::uint64_t replication_id);

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// The testbed requires reproducible runs: every experiment is seeded, and
/// two runs with the same seed produce identical request streams and thus
/// identical metrics. xoshiro256++ is small, fast, and passes BigCrush;
/// we implement it directly rather than relying on unspecified standard
/// library engines so results are stable across platforms.
class Rng {
 public:
  /// Creates a generator seeded from `seed` via splitmix64 expansion.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound), bias-free (Lemire rejection). `bound`
  /// must be positive.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [0, 1] excluding exact 0 (safe for log()).
  double NextDoubleOpen();

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed draw with the given mean (> 0).
  ///
  /// The paper's RequestGenerator draws request inter-arrival times from
  /// an exponential distribution (Table 1).
  double NextExponential(double mean);

  /// Splits off an independent generator (seeded from this one's stream).
  /// Used to give each testbed component its own stream so adding draws in
  /// one component does not perturb another.
  Rng Split();

 private:
  std::uint64_t s_[4];
};

}  // namespace airindex

#endif  // AIRINDEX_DES_RANDOM_H_
