#include "des/zipf.h"

#include <algorithm>
#include <cmath>

namespace airindex {

ZipfDistribution::ZipfDistribution(int n, double theta)
    : n_(std::max(n, 1)), theta_(std::max(theta, 0.0)) {
  cumulative_.resize(static_cast<std::size_t>(n_));
  double total = 0.0;
  for (int k = 0; k < n_; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta_);
    cumulative_[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against rounding
}

int ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<int>(it - cumulative_.begin());
}

double ZipfDistribution::Probability(int k) const {
  if (k < 0 || k >= n_) return 0.0;
  const double lo =
      k == 0 ? 0.0 : cumulative_[static_cast<std::size_t>(k - 1)];
  return cumulative_[static_cast<std::size_t>(k)] - lo;
}

}  // namespace airindex
