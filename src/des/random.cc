#include "des/random.h"

#include <cmath>

namespace airindex {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t ReplicationSeed(std::uint64_t master_seed,
                              std::uint64_t replication_id) {
  return master_seed ^ Mix64(replication_id);
}

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion; guarantees a non-zero state.
  std::uint64_t z = seed;
  for (auto& s : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    s = Mix64(z);
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  return (static_cast<double>(NextUint64() >> 11) + 1.0) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  return -mean * std::log(NextDoubleOpen());
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace airindex
