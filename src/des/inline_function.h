// Layer: 1 (des) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_DES_INLINE_FUNCTION_H_
#define AIRINDEX_DES_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace airindex {

/// A move-only callable wrapper with a fixed inline buffer.
///
/// The discrete-event hot path schedules two closures per simulated
/// request (arrival, completion); wrapping them in std::function would
/// heap-allocate each one, which dominates the per-request cost once the
/// access walks themselves are cheap. InlineFunction stores any callable
/// of at most `Capacity` bytes in place; larger callables still work but
/// fall back to the heap, so cold-path callers never have to care.
///
/// `fits_inline<F>` is exposed so hot paths can static_assert that their
/// closures really are allocation-free (core/simulator.cc does).
template <typename Signature, std::size_t Capacity = 120>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t);

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<void**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char*, Args&&...);
    void (*move)(unsigned char* to, unsigned char* from);
    void (*destroy)(unsigned char*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](unsigned char* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      },
      [](unsigned char* to, unsigned char* from) {
        D* source = std::launder(reinterpret_cast<D*>(from));
        ::new (static_cast<void*>(to)) D(std::move(*source));
        source->~D();
      },
      [](unsigned char* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](unsigned char* s, Args&&... args) -> R {
        return (**reinterpret_cast<D**>(s))(std::forward<Args>(args)...);
      },
      [](unsigned char* to, unsigned char* from) {
        *reinterpret_cast<void**>(to) = *reinterpret_cast<void**>(from);
      },
      [](unsigned char* s) { delete *reinterpret_cast<D**>(s); },
  };

  void MoveFrom(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace airindex

#endif  // AIRINDEX_DES_INLINE_FUNCTION_H_
