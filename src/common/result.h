#ifndef AIRINDEX_COMMON_RESULT_H_
#define AIRINDEX_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace airindex {

/// A value-or-error type: either holds a T or a non-OK Status.
///
/// Usage:
///
///   Result<Channel> r = BuildChannel(cfg);
///   if (!r.ok()) return r.status();
///   Channel channel = std::move(r).value();
///
/// Calling value() on an error Result aborts the process (this library is
/// exception-free; an unchecked error is a programming bug, not a
/// recoverable condition).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK status. Aborts if `status`
  /// is OK (an OK Result must carry a value).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) std::abort();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True if this result holds a value.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// The held value. Aborts if this result is an error.
  const T& value() const& {
    if (!ok()) std::abort();
    return *value_;
  }

  /// Moves the held value out. Aborts if this result is an error.
  T value() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  /// The held value (mutable). Aborts if this result is an error.
  T& value() & {
    if (!ok()) std::abort();
    return *value_;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace airindex

#endif  // AIRINDEX_COMMON_RESULT_H_
