#ifndef AIRINDEX_COMMON_STATUS_H_
#define AIRINDEX_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace airindex {

/// Error codes used across the library. The library does not throw
/// exceptions across API boundaries; fallible operations return a Status
/// (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
};

/// A lightweight success-or-error value, in the style used by storage
/// engines (RocksDB / Arrow). A default-constructed Status is OK and
/// carries no message; error statuses carry a code and a human-readable
/// message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for an OK status (for symmetry with the error factories).
  static Status Ok() { return Status(); }

  /// Factory for an invalid-argument error.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }

  /// Factory for an out-of-range error.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }

  /// Factory for a not-found error.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }

  /// Factory for a failed-precondition error.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }

  /// Factory for an internal-invariant-violation error.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True if the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message (empty for OK statuses).
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns the canonical name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

}  // namespace airindex

#endif  // AIRINDEX_COMMON_STATUS_H_
