// Layer: 0 (common) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_COMMON_TYPES_H_
#define AIRINDEX_COMMON_TYPES_H_

#include <cstdint>

namespace airindex {

/// The library's single time/size unit.
///
/// Following the paper (Section 4.1), both access time and tuning time are
/// measured "in terms of the number of bytes read": the simulated clock
/// advances one unit per byte put on the broadcast channel. Using one type
/// for both byte counts and simulated time makes the equivalence explicit
/// and keeps all arithmetic in integers.
using Bytes = std::int64_t;

/// Sentinel for "no target" in bucket pointer fields (e.g., a local index
/// entry whose child has no further occurrence this cycle).
inline constexpr Bytes kInvalidPhase = -1;

}  // namespace airindex

#endif  // AIRINDEX_COMMON_TYPES_H_
