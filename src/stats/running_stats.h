// Layer: 1 (stats) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_STATS_RUNNING_STATS_H_
#define AIRINDEX_STATS_RUNNING_STATS_H_

#include <cstdint>
#include <limits>

namespace airindex {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for the long request streams the testbed produces
/// (tens of millions of samples); never stores the samples themselves.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one sample.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly;
  /// Chan et al. combination).
  void Merge(const RunningStats& other);

  /// Number of samples added.
  std::int64_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance (n-1 denominator); 0 with fewer than two
  /// samples.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest sample seen; +inf when empty.
  double min() const { return min_; }

  /// Largest sample seen; -inf when empty.
  double max() const { return max_; }

  /// Sum of all samples.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace airindex

#endif  // AIRINDEX_STATS_RUNNING_STATS_H_
