// Layer: 1 (stats) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_STATS_RUNNING_STATS_H_
#define AIRINDEX_STATS_RUNNING_STATS_H_

#include <cstdint>
#include <limits>

namespace airindex {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for the long request streams the testbed produces
/// (tens of millions of samples); never stores the samples themselves.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one sample.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly;
  /// Chan et al. combination).
  void Merge(const RunningStats& other);

  /// Number of samples added.
  std::int64_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance (n-1 denominator); 0 with fewer than two
  /// samples.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest sample seen; +inf when empty.
  double min() const { return min_; }

  /// Largest sample seen; -inf when empty.
  double max() const { return max_; }

  /// Sum of all samples.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Raw second central moment (sum of squared deviations). Together
  /// with count()/mean() this is the accumulator's full merge state:
  /// Merge() combines exactly (count, mean, m2), so a accumulator
  /// round-tripped through FromRaw merges bit-identically to the
  /// original. min/max are NOT part of the raw state.
  double m2() const { return m2_; }

  /// Rebuilds an accumulator from its raw merge state (e.g. parsed from
  /// a sharded partial report). min/max are left at their empty-state
  /// sentinels — callers that only Merge() and read count/mean/variance
  /// observe a bit-identical accumulator.
  static RunningStats FromRaw(std::int64_t count, double mean, double m2) {
    RunningStats stats;
    stats.count_ = count;
    stats.mean_ = mean;
    stats.m2_ = m2;
    return stats;
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace airindex

#endif  // AIRINDEX_STATS_RUNNING_STATS_H_
