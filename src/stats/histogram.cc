#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace airindex {

namespace {

// 16 linear sub-buckets per power of two after the exact region [0, 16).
constexpr int kSubBucketBits = 4;
constexpr std::int64_t kSubBuckets = 1 << kSubBucketBits;
// Enough buckets for the full int64 range.
constexpr std::size_t kNumBuckets =
    kSubBuckets + (63 - kSubBucketBits) * kSubBuckets;

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::BucketIndex(std::int64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int msb =
      63 - std::countl_zero(static_cast<std::uint64_t>(value));
  const int shift = msb - kSubBucketBits;
  const std::size_t base =
      static_cast<std::size_t>(kSubBuckets) +
      static_cast<std::size_t>(shift) * kSubBuckets;
  const std::size_t offset =
      static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
  return base + offset;
}

std::int64_t Histogram::BucketUpperBound(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubBuckets)) {
    return static_cast<std::int64_t>(index);
  }
  const std::size_t group =
      (index - static_cast<std::size_t>(kSubBuckets)) / kSubBuckets;
  const std::size_t offset =
      (index - static_cast<std::size_t>(kSubBuckets)) % kSubBuckets;
  return ((static_cast<std::int64_t>(kSubBuckets) +
           static_cast<std::int64_t>(offset) + 1)
          << group) -
         1;
}

void Histogram::Add(std::int64_t value) {
  value = std::max<std::int64_t>(value, 0);
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

std::int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

}  // namespace airindex
