#ifndef AIRINDEX_STATS_HISTOGRAM_H_
#define AIRINDEX_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace airindex {

/// Log-scaled histogram for non-negative metric samples (byte counts).
///
/// Buckets grow geometrically (HdrHistogram-style, base-2 with linear
/// sub-buckets), so percentile error is bounded by the sub-bucket
/// resolution (~1/16) at any magnitude while memory stays a few KiB.
/// The testbed uses it to report tail access/tuning times, which the
/// paper's means alone cannot show.
class Histogram {
 public:
  Histogram();

  /// Records one sample; negative values clamp to zero.
  void Add(std::int64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Number of samples recorded.
  std::int64_t count() const { return count_; }

  /// Smallest / largest recorded sample (0 / 0 when empty).
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }

  /// Value at quantile q in [0,1] (upper bound of the containing
  /// bucket); 0 when empty. q=0.5 is the median.
  std::int64_t Quantile(double q) const;

  /// Convenience percentiles.
  std::int64_t p50() const { return Quantile(0.50); }
  std::int64_t p95() const { return Quantile(0.95); }
  std::int64_t p99() const { return Quantile(0.99); }

 private:
  static std::size_t BucketIndex(std::int64_t value);
  static std::int64_t BucketUpperBound(std::size_t index);

  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace airindex

#endif  // AIRINDEX_STATS_HISTOGRAM_H_
