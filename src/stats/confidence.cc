#include "stats/confidence.h"

#include <cmath>
#include <limits>

#include "stats/student_t.h"

namespace airindex {

ConfidenceEstimator::ConfidenceEstimator(double confidence_level,
                                         double target_accuracy)
    : confidence_level_(confidence_level), target_accuracy_(target_accuracy) {}

void ConfidenceEstimator::AddObservation(double y) { stats_.Add(y); }

void ConfidenceEstimator::Merge(const ConfidenceEstimator& other) {
  stats_.Merge(other.stats_);
}

ConfidenceCheck ConfidenceEstimator::Check() const {
  ConfidenceCheck check;
  check.mean = stats_.mean();
  const auto n = static_cast<double>(stats_.count());
  if (stats_.count() < 2) {
    check.relative_accuracy = std::numeric_limits<double>::infinity();
    return check;
  }
  const double t = StudentTCriticalValue(confidence_level_, n - 1.0);
  check.half_width = t * stats_.stddev() / std::sqrt(n);
  if (check.mean == 0.0) {
    // A degenerate all-zero sample is exact; anything else with zero mean
    // cannot satisfy a relative target.
    check.relative_accuracy =
        check.half_width == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  } else {
    check.relative_accuracy = check.half_width / std::fabs(check.mean);
  }
  check.satisfied = check.relative_accuracy <= target_accuracy_;
  return check;
}

}  // namespace airindex
