#include "stats/student_t.h"

#include <cmath>
#include <limits>

namespace airindex {

namespace {

// Continued fraction for the incomplete beta function (modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

double StudentTQuantile(double p, double df) {
  if (!(p > 0.0 && p < 1.0) || df < 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.5) return 0.0;
  // By symmetry solve for the upper half only.
  if (p < 0.5) return -StudentTQuantile(1.0 - p, df);

  // Bracket the root, then bisect. The quantile is called once per
  // simulation round, so robustness beats speed here.
  double lo = 0.0;
  double hi = 1.0;
  while (StudentTCdf(hi, df) < p) {
    hi *= 2.0;
    if (hi > 1e12) break;  // p astronomically close to 1
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double StudentTCriticalValue(double confidence_level, double df) {
  const double alpha = 1.0 - confidence_level;
  return StudentTQuantile(1.0 - alpha / 2.0, df);
}

}  // namespace airindex
