#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

namespace airindex {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace airindex
