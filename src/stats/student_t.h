#ifndef AIRINDEX_STATS_STUDENT_T_H_
#define AIRINDEX_STATS_STUDENT_T_H_

namespace airindex {

/// Regularized incomplete beta function I_x(a, b), for a, b > 0 and
/// x in [0, 1]. Evaluated with the Lentz continued-fraction expansion.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Quantile (inverse CDF) of Student's t distribution: the value t such
/// that P(T <= t) = p, for p in (0, 1) and df >= 1.
///
/// The paper's accuracy controller computes the confidence half-width
/// H = t_{alpha/2; N-1} * sigma / sqrt(N); this supplies the t factor.
double StudentTQuantile(double p, double df);

/// Two-sided critical value t_{alpha/2; df} for the given confidence
/// level (e.g., level = 0.99 gives the t with 0.5% in each tail).
double StudentTCriticalValue(double confidence_level, double df);

}  // namespace airindex

#endif  // AIRINDEX_STATS_STUDENT_T_H_
