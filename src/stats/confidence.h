#ifndef AIRINDEX_STATS_CONFIDENCE_H_
#define AIRINDEX_STATS_CONFIDENCE_H_

#include <vector>

#include "stats/running_stats.h"

namespace airindex {

/// Result of a confidence check over a set of sample means.
struct ConfidenceCheck {
  /// Sample mean of the observations.
  double mean = 0.0;
  /// Confidence half-width H = t_{alpha/2;N-1} * sigma / sqrt(N).
  double half_width = 0.0;
  /// Relative accuracy H / |mean| (infinity when mean == 0 and H > 0).
  double relative_accuracy = 0.0;
  /// True when relative_accuracy <= the configured target.
  bool satisfied = false;
};

/// Implements the paper's stopping rule (Table 1 footnote):
///
///   "Given N sample results Y1..YN, the confidence accuracy is H/Y where
///    H is the confidence interval half-width and Y the sample mean. [...]
///    H = t_{alpha/2;N-1} * sigma / sqrt(N)."
///
/// The testbed feeds one observation per simulation round (the round mean
/// over its 500 requests); the run stops when the relative half-width of
/// the round means drops to the target (default 0.01 at 99% confidence).
class ConfidenceEstimator {
 public:
  /// `confidence_level` in (0,1), e.g. 0.99; `target_accuracy` e.g. 0.01.
  ConfidenceEstimator(double confidence_level, double target_accuracy);

  /// Adds one observation (a round mean).
  void AddObservation(double y);

  /// Merges another estimator's observations into this one (Chan et al.
  /// combination of the underlying accumulators). Lets workers accumulate
  /// round means locally and a coordinator run the Student-t check on the
  /// merged stream. Merging is exact in counts and numerically stable,
  /// but floating-point summation order differs from interleaved
  /// AddObservation calls — for bit-identical adaptive stopping, always
  /// merge partial estimators in a fixed (replication-id) order, as the
  /// parallel replication engine does.
  void Merge(const ConfidenceEstimator& other);

  /// Number of observations so far.
  int count() const { return static_cast<int>(stats_.count()); }

  /// Running mean of the observations.
  double mean() const { return stats_.mean(); }

  /// Evaluates the stopping rule. With fewer than two observations the
  /// rule is never satisfied (the t factor is undefined).
  ConfidenceCheck Check() const;

  double confidence_level() const { return confidence_level_; }
  double target_accuracy() const { return target_accuracy_; }

 private:
  double confidence_level_;
  double target_accuracy_;
  RunningStats stats_;
};

}  // namespace airindex

#endif  // AIRINDEX_STATS_CONFIDENCE_H_
