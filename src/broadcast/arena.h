// Layer: 3 (broadcast) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_BROADCAST_ARENA_H_
#define AIRINDEX_BROADCAST_ARENA_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "broadcast/channel.h"

namespace airindex {

/// The arena's on-wire structures. Every field is fixed-width and every
/// cross-structure reference is a 32-bit offset (or index) into one of
/// the arena's pools, so a flattened program is a single relocatable
/// buffer: it can be memcpy'd, written to disk and loaded back anywhere
/// without pointer fixups. All structures are padded explicitly to
/// multiples of 8 bytes and the pads are zeroed, which is what makes
/// Flatten deterministic byte-for-byte (the CI snapshot-roundtrip gate
/// depends on it).
///
/// A "string ref" is (offset, length) into the arena's string pool; an
/// "entry ref" is (first, count) into the pointer-entry pool; a "word
/// ref" is (first, count) into the 64-bit word pool.
struct ArenaStrRef {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};
static_assert(sizeof(ArenaStrRef) == 8);

/// Flattened PointerEntry: the key views become string-pool refs.
struct ArenaPointerEntry {
  ArenaStrRef key_lo;
  ArenaStrRef key_hi;
  std::int64_t target_phase = kInvalidPhase;
  std::int32_t target_channel = kSameChannel;
  std::uint32_t pad = 0;
};
static_assert(sizeof(ArenaPointerEntry) == 32);

/// Flattened Bucket: vectors become pool spans, strings become refs.
struct ArenaBucket {
  std::int64_t size = 0;
  std::int64_t record_id = -1;
  std::int64_t next_index_segment_phase = kInvalidPhase;
  std::int64_t slot = -1;
  std::int64_t hash_value = -1;
  std::int64_t shift_phase = kInvalidPhase;
  ArenaStrRef range_lo;
  ArenaStrRef range_hi;
  ArenaStrRef last_broadcast_key;
  std::uint32_t local_first = 0;
  std::uint32_t local_count = 0;
  std::uint32_t control_first = 0;
  std::uint32_t control_count = 0;
  std::uint32_t signature_first = 0;
  std::uint32_t signature_count = 0;
  std::int32_t level = -1;
  std::uint8_t kind = 0;  // BucketKind as u8
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(ArenaBucket) == 104);

/// One channel of the flattened program: a bucket-pool span.
struct ArenaChannelDesc {
  std::uint32_t first_bucket = 0;
  std::uint32_t bucket_count = 0;
};
static_assert(sizeof(ArenaChannelDesc) == 8);

/// Fixed-size header at offset 0 of every arena buffer. Section offsets
/// are bytes from the start of the buffer; all sections are 8-aligned.
struct ArenaHeader {
  std::uint32_t magic = 0;
  std::uint32_t format_version = 0;
  std::int32_t scheme_kind = -1;  // SchemeKind as int; -1 = untagged
  std::uint32_t num_channels = 0;
  std::int64_t switch_cost_bytes = 0;
  std::uint64_t dataset_fingerprint = 0;
  std::uint64_t params_fingerprint = 0;
  std::uint32_t channels_offset = 0;
  std::uint32_t buckets_offset = 0;
  std::uint32_t num_buckets = 0;
  std::uint32_t entries_offset = 0;
  std::uint32_t num_entries = 0;
  std::uint32_t words_offset = 0;
  std::uint32_t num_words = 0;
  std::uint32_t strings_offset = 0;
  std::uint32_t string_pool_bytes = 0;
  std::uint32_t aux_offset = 0;
  std::uint32_t num_aux = 0;
  std::uint32_t total_bytes = 0;
};
static_assert(sizeof(ArenaHeader) == 88);

/// A broadcast program flattened into one contiguous, offset-addressed
/// buffer.
///
/// Buckets, index nodes and cross-bucket/cross-channel pointers live in
/// fixed-width pools referenced by 32-bit offsets, so the whole program
/// is built once per (scheme, dataset shape), shared read-only across
/// replications and sweep cells, serialized to disk (broadcast/snapshot.h)
/// and loaded back byte-identically. Flatten(Inflate(x)) == x at the byte
/// level; snapshot_test and the CI snapshot-roundtrip job gate this.
class ProgramArena {
 public:
  static constexpr std::uint32_t kMagic = 0x41505247u;  // "GRPA" on disk
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Flattens built channels plus scheme metadata into an arena.
  /// `aux` carries scheme-resolved scalars (replication counts, slot
  /// counts, ...) the restore path needs; see schemes/scheme.cc for the
  /// per-scheme layout.
  static ProgramArena Flatten(const std::vector<const Channel*>& channels,
                              Bytes switch_cost_bytes, int scheme_kind,
                              std::uint64_t dataset_fingerprint,
                              std::uint64_t params_fingerprint,
                              const std::vector<std::int64_t>& aux);

  /// Adopts a raw buffer (e.g. loaded from a snapshot) after validating
  /// the header and every section offset, pool span and string ref
  /// against the buffer bounds. A truncated or corrupted buffer yields a
  /// Status, never UB.
  static Result<ProgramArena> FromBytes(std::vector<std::uint8_t> bytes);

  /// The contiguous buffer. Stable across moves of this arena (the heap
  /// allocation is preserved), so inflated channels' key views stay
  /// valid as long as one owner of this arena is alive.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// FNV-1a 64 over the whole buffer; the snapshot header stores it.
  std::uint64_t Checksum() const;

  // --- header accessors -------------------------------------------------
  const ArenaHeader& header() const;
  int scheme_kind() const { return header().scheme_kind; }
  int num_channels() const { return static_cast<int>(header().num_channels); }
  Bytes switch_cost_bytes() const { return header().switch_cost_bytes; }
  std::uint64_t dataset_fingerprint() const {
    return header().dataset_fingerprint;
  }
  std::uint64_t params_fingerprint() const {
    return header().params_fingerprint;
  }

  // --- zero-copy section views (offset arithmetic, no allocation) -------
  const ArenaChannelDesc& channel_desc(int i) const;
  /// Bucket `i` of the whole bucket pool.
  const ArenaBucket& bucket(std::uint32_t i) const;
  std::uint32_t num_buckets() const { return header().num_buckets; }
  const ArenaPointerEntry& entry(std::uint32_t i) const;
  std::uint32_t num_entries() const { return header().num_entries; }
  /// Word `i` of the 64-bit pool (signature words).
  std::uint64_t word(std::uint32_t i) const;
  std::uint32_t num_words() const { return header().num_words; }
  /// The bytes a string ref points at.
  std::string_view str(const ArenaStrRef& ref) const;
  /// Scheme-resolved scalars stored at Flatten time.
  std::vector<std::int64_t> aux() const;

  /// Reconstructs the channels. Pointer-entry key views point into this
  /// arena's string pool, so the arena must outlive the channels (the
  /// restore path wraps both in one owner; see schemes/scheme.cc).
  Result<std::vector<Channel>> InflateChannels() const;

  /// Re-checks every offset, span and ref against the buffer bounds.
  /// FromBytes runs this; exposed for tests and the inspect tool.
  Status Validate() const;

 private:
  ProgramArena() = default;

  std::vector<std::uint8_t> bytes_;
};

/// FNV-1a 64-bit over a byte range (the arena/snapshot checksum; also
/// used for the dataset and params fingerprints in core/program_cache.h).
std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_ARENA_H_
