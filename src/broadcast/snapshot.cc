#include "broadcast/snapshot.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace airindex {

std::vector<std::uint8_t> ProgramSnapshot::Serialize(
    const ProgramArena& arena) {
  SnapshotHeader header;
  header.magic = kMagic;
  header.format_version = kFormatVersion;
  header.payload_bytes = arena.bytes().size();
  header.payload_checksum = arena.Checksum();

  std::vector<std::uint8_t> out(sizeof(header) + arena.bytes().size());
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(header), arena.bytes().data(),
              arena.bytes().size());
  return out;
}

Result<ProgramArena> ProgramSnapshot::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(SnapshotHeader)) {
    return Status::InvalidArgument("snapshot: buffer shorter than header");
  }
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kMagic) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  if (header.format_version != kFormatVersion) {
    return Status::InvalidArgument(
        "snapshot: format version " + std::to_string(header.format_version) +
        " unsupported (want " + std::to_string(kFormatVersion) + ")");
  }
  if (header.payload_bytes != bytes.size() - sizeof(header)) {
    return Status::InvalidArgument(
        "snapshot: payload truncated (header claims " +
        std::to_string(header.payload_bytes) + " bytes, file carries " +
        std::to_string(bytes.size() - sizeof(header)) + ")");
  }
  std::vector<std::uint8_t> payload(bytes.begin() + sizeof(header),
                                    bytes.end());
  const std::uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  if (checksum != header.payload_checksum) {
    return Status::InvalidArgument("snapshot: checksum mismatch (corrupted "
                                   "payload)");
  }
  return ProgramArena::FromBytes(std::move(payload));
}

Status ProgramSnapshot::WriteFile(const std::string& path,
                                  const ProgramArena& arena) {
  const std::vector<std::uint8_t> bytes = Serialize(arena);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("snapshot: cannot open " + tmp + " for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

Result<ProgramArena> ProgramSnapshot::LoadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("snapshot: no file at " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::Internal("snapshot: read error on " + path);
  }
  return Deserialize(bytes);
}

}  // namespace airindex
