// Layer: 3 (broadcast) — see docs/ARCHITECTURE.md for the layer map.
//
// Skew-aware broadcast scheduling: generalized broadcast disks whose
// per-disk repetition frequencies follow the square-root rule over a
// popularity profile (Ammar & Wong; the RBO scheduling notes), plus the
// online re-tiering loop that re-assigns records to disks between cycles
// from the observed request stream.
//
// This layer owns only the *slot arithmetic*: which record occupies which
// data slot of the major cycle, with exact per-cycle accounting (a record
// on disk d appears exactly f_d times per major cycle — the chunking
// identity the classic broadcast-disks algorithm guarantees). How slots
// are interleaved with index segments is the scheme layer's business
// (schemes/scheduled.h); schemes/broadcast_disks.h reuses the same
// helpers for its fraction-specified legacy layout.
#ifndef AIRINDEX_BROADCAST_SCHEDULE_H_
#define AIRINDEX_BROADCAST_SCHEDULE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace airindex {

/// Which slot scheduler a scheme program runs.
enum class SchedulerKind {
  /// One slot per record per cycle — the paper's layouts, unchanged.
  kFlat,
  /// Square-root-rule broadcast disks derived from the Zipf profile.
  kSquareRoot,
  /// kSquareRoot start, then per-replication online re-tiering from the
  /// observed request stream (core/simulator.cc drives the epochs).
  kOnline,
};

/// Short parseable name ("flat", "sqrt", "online").
const char* SchedulerKindToString(SchedulerKind kind);

/// Parses a display name back to the enum; false if unknown.
bool ParseSchedulerKind(std::string_view text, SchedulerKind* out);

/// Scheduling knobs carried inside SchemeParams. The default (kFlat)
/// leaves every scheme's committed layout untouched.
struct ScheduleParams {
  SchedulerKind scheduler = SchedulerKind::kFlat;
  /// Number of broadcast disks (popularity tiers).
  int num_disks = 3;
  /// Zipf skew the square-root rule plans for; < 0 means "inherit the
  /// workload skew" (core resolves it to TestbedConfig::zipf_theta
  /// before programs are built).
  double theta = -1.0;
  /// Online re-tiering epoch length, in observed on-air requests.
  int retier_requests = 256;
  /// Conflict-aware placement (schemes/multichannel.cc): rotate the
  /// final bucket sequence left by this many slots. 0 for single-channel
  /// programs.
  int rotation_slots = 0;
  /// Global Zipf rank of this program's record 0 — a key-partitioned
  /// channel schedules its slice under the *conditional* popularity of
  /// its records, not a fresh local Zipf.
  int rank_offset = 0;
  /// Total ranks of the global popularity profile; 0 means "this
  /// program's records are the whole population".
  int total_ranks = 0;

  bool active() const { return scheduler != SchedulerKind::kFlat; }
};

/// Zipf(theta) popularity of `num_ranks` records at global ranks
/// [rank_offset, rank_offset + num_ranks), normalized over a population
/// of `total_ranks` ranks (0 = just these). P(rank k) ∝ 1/(k+1)^theta,
/// matching core/request_generator.h's rank = record index convention.
std::vector<double> ZipfRankPopularity(int num_ranks, double theta,
                                   int rank_offset = 0, int total_ranks = 0);

/// A record→disk assignment: records listed in popularity order plus the
/// disk boundaries and per-disk repetition frequencies over that order.
struct DiskAssignment {
  /// Position ranges per disk over the popularity order: disk d covers
  /// positions [disk_begin[d], disk_begin[d+1]). Size num_disks + 1.
  std::vector<int> disk_begin;
  /// Per-disk broadcast frequency, non-increasing, every entry dividing
  /// the hottest disk's (the classic chunking requirement).
  std::vector<int> frequencies;
  /// Popularity order: position p holds record record_order[p]. The
  /// square-root planner emits the identity (rank order); the online
  /// re-tiering loop permutes it.
  std::vector<int> record_order;

  int num_disks() const { return static_cast<int>(frequencies.size()); }
  int num_records() const { return static_cast<int>(record_order.size()); }
  int max_frequency() const { return frequencies.front(); }

  /// Disk whose position range covers `position`.
  int DiskOfPosition(int position) const;

  /// record id → disk index map.
  std::vector<int> DiskOfRecord() const;

  /// Data slots of one major cycle: sum over disks of size_d * f_d (the
  /// exact accounting identity).
  std::int64_t SlotsPerMajorCycle() const;
};

/// Legacy fraction-specified assignment (schemes/broadcast_disks.h):
/// validates the fractions/frequencies and cuts the identity record
/// order at the cumulative-fraction boundaries, at least one record per
/// disk. Byte-compatible with the pre-scheduler BroadcastDisks rule.
Result<DiskAssignment> AssignmentFromFractions(
    const std::vector<double>& fractions, const std::vector<int>& frequencies,
    int num_records);

/// Square-root-rule assignment: disk boundaries equalize the sqrt-
/// popularity mass (optimal inter-occurrence spacing ∝ 1/√p, so each
/// disk carries an equal share of Σ√p), and disk d repeats at the
/// integer frequency nearest its mean √p ratio to the coldest disk,
/// rounded onto the divisors of the hottest frequency so the chunked
/// layout keeps exact per-cycle accounting. `popularity` must be
/// non-increasing (rank order) and positive; `num_disks` in [1, 64].
Result<DiskAssignment> SquareRootAssignment(
    const std::vector<double>& popularity, int num_disks);

/// The planned assignment of `params` over `num_records` records —
/// ZipfRankPopularity(theta, rank_offset, total_ranks) through
/// SquareRootAssignment. The one rule core telemetry, the analytical
/// sweep, and the scheme builder all share.
Result<DiskAssignment> ScheduleAssignmentFor(const ScheduleParams& params,
                                             int num_records);

/// One major cycle's data-slot order.
struct DiskLayout {
  /// Record id broadcast in each data slot, cycle order.
  std::vector<int> slot_record;
  /// Slot index where each minor cycle starts; size max_frequency + 1
  /// (last entry == slot_record.size()).
  std::vector<int> minor_begin;
  /// Per record: sorted data-slot indices of its occurrences. Disk-d
  /// records get exactly f_d entries.
  std::vector<std::vector<int>> record_slots;
};

/// Chunked broadcast-disks emission: disk d is split into max_freq/f_d
/// balanced chunks and minor cycle i carries chunk (i mod chunks_d) of
/// every disk — record phase order within a chunk follows the popularity
/// order. Identical slot order to the pre-scheduler BroadcastDisks build
/// for identity record orders.
DiskLayout BuildDiskLayout(const DiskAssignment& assignment);

/// Online re-tiering with deterministic hysteresis.
///
/// Observe() counts on-air requests per record; EndEpoch() folds the
/// epoch's counts into an integer EWMA score (s ← ⌊s/2⌋ + c — the
/// hysteresis: a record must sustain popularity across epochs to climb,
/// and one quiet epoch only halves its standing) and re-sorts the record
/// order by (score desc, current disk asc, record id asc) — the
/// disk-sticky tie-break keeps unobserved records in place. The disk
/// boundary/frequency template never changes, only membership, so the
/// cycle length is constant across re-tiers. Everything is integer
/// arithmetic over the observation stream: two identical request streams
/// produce byte-identical assignments, which is what keeps --jobs
/// bit-identity intact when core drives one retierer per replication.
class OnlineRetierer {
 public:
  explicit OnlineRetierer(DiskAssignment initial);

  /// Counts one on-air request for `record`.
  void Observe(int record);

  /// On-air requests observed since the last EndEpoch().
  int observed_this_epoch() const { return observed_; }

  /// Closes the epoch and re-tiers; returns how many records changed
  /// disks.
  int EndEpoch();

  const DiskAssignment& assignment() const { return assignment_; }
  int epochs() const { return epochs_; }
  std::int64_t total_moves() const { return total_moves_; }

 private:
  DiskAssignment assignment_;
  std::vector<std::int64_t> scores_;
  std::vector<std::int64_t> epoch_counts_;
  std::vector<int> disk_of_;
  int observed_ = 0;
  int epochs_ = 0;
  std::int64_t total_moves_ = 0;
};

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_SCHEDULE_H_
