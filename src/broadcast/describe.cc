#include "broadcast/describe.h"

#include <iomanip>

namespace airindex {

void DescribeChannel(const Channel& channel, std::ostream& os,
                     std::size_t max_buckets) {
  os << "cycle: " << channel.num_buckets() << " buckets, "
     << channel.cycle_bytes() << " bytes (" << channel.num_data_buckets()
     << " data, " << channel.num_index_buckets() << " index, "
     << channel.num_signature_buckets() << " signature)\n";
  const std::size_t shown = std::min(max_buckets, channel.num_buckets());
  for (std::size_t i = 0; i < shown; ++i) {
    const Bucket& bucket = channel.bucket(i);
    os << '[' << std::setw(6) << i << " @ " << std::setw(8)
       << channel.start_phase(i) << ".." << channel.end_phase(i) - 1 << "] ";
    switch (bucket.kind) {
      case BucketKind::kData:
        os << "data      ";
        if (bucket.record_id >= 0) {
          os << "record=" << bucket.record_id;
        } else {
          os << "(empty slot)";
        }
        if (bucket.slot >= 0) {
          os << " slot=" << bucket.slot << " shift->" << bucket.shift_phase;
        }
        break;
      case BucketKind::kIndex:
        os << "index  L" << bucket.level << " range=[" << bucket.range_lo
           << ".." << bucket.range_hi << "] local=" << bucket.local.size()
           << " ctl=" << bucket.control.size();
        if (!bucket.last_broadcast_key.empty()) {
          os << " last=" << bucket.last_broadcast_key;
        }
        break;
      case BucketKind::kSignature:
        os << "signature ";
        if (bucket.level == 1) os << "(group) ";
        os << "record=" << bucket.record_id << " bits="
           << bucket.signature.size() * 64;
        break;
    }
    os << '\n';
  }
  if (shown < channel.num_buckets()) {
    os << "... (" << channel.num_buckets() - shown << " more buckets)\n";
  }
}

}  // namespace airindex
