#include "broadcast/arena.h"

#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

namespace airindex {

namespace {

constexpr std::size_t kAlign = 8;

std::size_t AlignUp(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

/// Deterministic string interner: first-touch append order, duplicates
/// collapse to the first occurrence. The empty string is always {0, 0}.
class StringPool {
 public:
  ArenaStrRef Intern(std::string_view s) {
    if (s.empty()) return ArenaStrRef{0, 0};
    const auto it = interned_.find(std::string(s));
    if (it != interned_.end()) return it->second;
    const ArenaStrRef ref{static_cast<std::uint32_t>(pool_.size()),
                          static_cast<std::uint32_t>(s.size())};
    pool_.append(s);
    interned_.emplace(std::string(s), ref);
    return ref;
  }

  const std::string& pool() const { return pool_; }

 private:
  std::string pool_;
  std::unordered_map<std::string, ArenaStrRef> interned_;
};

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

ProgramArena ProgramArena::Flatten(const std::vector<const Channel*>& channels,
                                   Bytes switch_cost_bytes, int scheme_kind,
                                   std::uint64_t dataset_fingerprint,
                                   std::uint64_t params_fingerprint,
                                   const std::vector<std::int64_t>& aux) {
  // Pass 1: flatten into growable pools (fixed traversal order: channels
  // in order, buckets in cycle order, local entries before control
  // entries — re-flattening an inflated arena reproduces the order, and
  // with it the bytes).
  std::vector<ArenaChannelDesc> descs;
  std::vector<ArenaBucket> buckets;
  std::vector<ArenaPointerEntry> entries;
  std::vector<std::uint64_t> words;
  StringPool strings;

  const auto intern_entries =
      [&](const std::vector<PointerEntry>& source) -> std::pair<std::uint32_t,
                                                                std::uint32_t> {
    const auto first = static_cast<std::uint32_t>(entries.size());
    for (const PointerEntry& e : source) {
      ArenaPointerEntry flat;
      flat.key_lo = strings.Intern(e.key_lo);
      flat.key_hi = strings.Intern(e.key_hi);
      flat.target_phase = e.target_phase;
      flat.target_channel = e.target_channel;
      entries.push_back(flat);
    }
    return {first, static_cast<std::uint32_t>(source.size())};
  };

  for (const Channel* channel : channels) {
    ArenaChannelDesc desc;
    desc.first_bucket = static_cast<std::uint32_t>(buckets.size());
    desc.bucket_count = static_cast<std::uint32_t>(channel->num_buckets());
    descs.push_back(desc);
    for (std::size_t i = 0; i < channel->num_buckets(); ++i) {
      const Bucket& b = channel->bucket(i);
      ArenaBucket flat;
      flat.size = b.size;
      flat.record_id = b.record_id;
      flat.next_index_segment_phase = b.next_index_segment_phase;
      flat.slot = b.slot;
      flat.hash_value = b.hash_value;
      flat.shift_phase = b.shift_phase;
      flat.range_lo = strings.Intern(b.range_lo);
      flat.range_hi = strings.Intern(b.range_hi);
      flat.last_broadcast_key = strings.Intern(b.last_broadcast_key);
      std::tie(flat.local_first, flat.local_count) = intern_entries(b.local);
      std::tie(flat.control_first, flat.control_count) =
          intern_entries(b.control);
      flat.signature_first = static_cast<std::uint32_t>(words.size());
      flat.signature_count = static_cast<std::uint32_t>(b.signature.size());
      words.insert(words.end(), b.signature.begin(), b.signature.end());
      flat.level = b.level;
      flat.kind = static_cast<std::uint8_t>(b.kind);
      buckets.push_back(flat);
    }
  }

  // Pass 2: lay the sections out in one buffer.
  ArenaHeader header;
  header.magic = kMagic;
  header.format_version = kFormatVersion;
  header.scheme_kind = scheme_kind;
  header.num_channels = static_cast<std::uint32_t>(descs.size());
  header.switch_cost_bytes = switch_cost_bytes;
  header.dataset_fingerprint = dataset_fingerprint;
  header.params_fingerprint = params_fingerprint;

  std::size_t at = sizeof(ArenaHeader);
  header.channels_offset = static_cast<std::uint32_t>(at);
  at = AlignUp(at + descs.size() * sizeof(ArenaChannelDesc));
  header.buckets_offset = static_cast<std::uint32_t>(at);
  header.num_buckets = static_cast<std::uint32_t>(buckets.size());
  at = AlignUp(at + buckets.size() * sizeof(ArenaBucket));
  header.entries_offset = static_cast<std::uint32_t>(at);
  header.num_entries = static_cast<std::uint32_t>(entries.size());
  at = AlignUp(at + entries.size() * sizeof(ArenaPointerEntry));
  header.words_offset = static_cast<std::uint32_t>(at);
  header.num_words = static_cast<std::uint32_t>(words.size());
  at = AlignUp(at + words.size() * sizeof(std::uint64_t));
  header.strings_offset = static_cast<std::uint32_t>(at);
  header.string_pool_bytes =
      static_cast<std::uint32_t>(strings.pool().size());
  at = AlignUp(at + strings.pool().size());
  header.aux_offset = static_cast<std::uint32_t>(at);
  header.num_aux = static_cast<std::uint32_t>(aux.size());
  at = AlignUp(at + aux.size() * sizeof(std::int64_t));
  header.total_bytes = static_cast<std::uint32_t>(at);

  ProgramArena arena;
  arena.bytes_.assign(at, 0);  // alignment pads stay zero — determinism
  std::uint8_t* base = arena.bytes_.data();
  std::memcpy(base, &header, sizeof(header));
  std::memcpy(base + header.channels_offset, descs.data(),
              descs.size() * sizeof(ArenaChannelDesc));
  std::memcpy(base + header.buckets_offset, buckets.data(),
              buckets.size() * sizeof(ArenaBucket));
  std::memcpy(base + header.entries_offset, entries.data(),
              entries.size() * sizeof(ArenaPointerEntry));
  std::memcpy(base + header.words_offset, words.data(),
              words.size() * sizeof(std::uint64_t));
  std::memcpy(base + header.strings_offset, strings.pool().data(),
              strings.pool().size());
  std::memcpy(base + header.aux_offset, aux.data(),
              aux.size() * sizeof(std::int64_t));
  return arena;
}

Result<ProgramArena> ProgramArena::FromBytes(std::vector<std::uint8_t> bytes) {
  ProgramArena arena;
  arena.bytes_ = std::move(bytes);
  if (Status status = arena.Validate(); !status.ok()) return status;
  return arena;
}

std::uint64_t ProgramArena::Checksum() const {
  return Fnv1a64(bytes_.data(), bytes_.size());
}

const ArenaHeader& ProgramArena::header() const {
  return *reinterpret_cast<const ArenaHeader*>(bytes_.data());
}

const ArenaChannelDesc& ProgramArena::channel_desc(int i) const {
  return *reinterpret_cast<const ArenaChannelDesc*>(
      bytes_.data() + header().channels_offset +
      static_cast<std::size_t>(i) * sizeof(ArenaChannelDesc));
}

const ArenaBucket& ProgramArena::bucket(std::uint32_t i) const {
  return *reinterpret_cast<const ArenaBucket*>(
      bytes_.data() + header().buckets_offset +
      static_cast<std::size_t>(i) * sizeof(ArenaBucket));
}

const ArenaPointerEntry& ProgramArena::entry(std::uint32_t i) const {
  return *reinterpret_cast<const ArenaPointerEntry*>(
      bytes_.data() + header().entries_offset +
      static_cast<std::size_t>(i) * sizeof(ArenaPointerEntry));
}

std::uint64_t ProgramArena::word(std::uint32_t i) const {
  std::uint64_t value;
  std::memcpy(&value,
              bytes_.data() + header().words_offset +
                  static_cast<std::size_t>(i) * sizeof(std::uint64_t),
              sizeof(value));
  return value;
}

std::string_view ProgramArena::str(const ArenaStrRef& ref) const {
  return std::string_view(
      reinterpret_cast<const char*>(bytes_.data() + header().strings_offset +
                                    ref.offset),
      ref.length);
}

std::vector<std::int64_t> ProgramArena::aux() const {
  std::vector<std::int64_t> values(header().num_aux);
  std::memcpy(values.data(), bytes_.data() + header().aux_offset,
              values.size() * sizeof(std::int64_t));
  return values;
}

Status ProgramArena::Validate() const {
  if (bytes_.size() < sizeof(ArenaHeader)) {
    return Status::InvalidArgument("arena: buffer shorter than header");
  }
  const ArenaHeader& h = header();
  if (h.magic != kMagic) {
    return Status::InvalidArgument("arena: bad magic");
  }
  if (h.format_version != kFormatVersion) {
    return Status::InvalidArgument(
        "arena: format version " + std::to_string(h.format_version) +
        " unsupported (want " + std::to_string(kFormatVersion) + ")");
  }
  if (h.total_bytes != bytes_.size()) {
    return Status::InvalidArgument(
        "arena: header claims " + std::to_string(h.total_bytes) +
        " bytes, buffer has " + std::to_string(bytes_.size()));
  }
  const auto section_ok = [&](std::uint64_t offset, std::uint64_t count,
                              std::uint64_t unit) {
    return offset <= bytes_.size() && count * unit <= bytes_.size() - offset;
  };
  if (!section_ok(h.channels_offset, h.num_channels,
                  sizeof(ArenaChannelDesc)) ||
      !section_ok(h.buckets_offset, h.num_buckets, sizeof(ArenaBucket)) ||
      !section_ok(h.entries_offset, h.num_entries,
                  sizeof(ArenaPointerEntry)) ||
      !section_ok(h.words_offset, h.num_words, sizeof(std::uint64_t)) ||
      !section_ok(h.strings_offset, h.string_pool_bytes, 1) ||
      !section_ok(h.aux_offset, h.num_aux, sizeof(std::int64_t))) {
    return Status::InvalidArgument("arena: section out of buffer bounds");
  }
  const auto str_ok = [&](const ArenaStrRef& ref) {
    return ref.offset <= h.string_pool_bytes &&
           ref.length <= h.string_pool_bytes - ref.offset;
  };
  const auto span_ok = [](std::uint32_t first, std::uint32_t count,
                          std::uint32_t total) {
    return first <= total && count <= total - first;
  };
  for (std::uint32_t c = 0; c < h.num_channels; ++c) {
    const ArenaChannelDesc& desc = channel_desc(static_cast<int>(c));
    if (!span_ok(desc.first_bucket, desc.bucket_count, h.num_buckets)) {
      return Status::InvalidArgument("arena: channel bucket span out of "
                                     "bounds");
    }
  }
  for (std::uint32_t i = 0; i < h.num_buckets; ++i) {
    const ArenaBucket& b = bucket(i);
    if (b.kind > static_cast<std::uint8_t>(BucketKind::kSignature)) {
      return Status::InvalidArgument("arena: bucket with unknown kind");
    }
    if (!str_ok(b.range_lo) || !str_ok(b.range_hi) ||
        !str_ok(b.last_broadcast_key)) {
      return Status::InvalidArgument("arena: bucket string ref out of pool");
    }
    if (!span_ok(b.local_first, b.local_count, h.num_entries) ||
        !span_ok(b.control_first, b.control_count, h.num_entries)) {
      return Status::InvalidArgument("arena: bucket entry span out of pool");
    }
    if (!span_ok(b.signature_first, b.signature_count, h.num_words)) {
      return Status::InvalidArgument("arena: bucket word span out of pool");
    }
  }
  for (std::uint32_t i = 0; i < h.num_entries; ++i) {
    const ArenaPointerEntry& e = entry(i);
    if (!str_ok(e.key_lo) || !str_ok(e.key_hi)) {
      return Status::InvalidArgument("arena: pointer-entry key ref out of "
                                     "pool");
    }
  }
  return Status::Ok();
}

Result<std::vector<Channel>> ProgramArena::InflateChannels() const {
  if (Status status = Validate(); !status.ok()) return status;
  const ArenaHeader& h = header();
  std::vector<Channel> channels;
  channels.reserve(h.num_channels);
  for (std::uint32_t c = 0; c < h.num_channels; ++c) {
    const ArenaChannelDesc& desc = channel_desc(static_cast<int>(c));
    std::vector<Bucket> buckets;
    buckets.reserve(desc.bucket_count);
    for (std::uint32_t i = 0; i < desc.bucket_count; ++i) {
      const ArenaBucket& flat = bucket(desc.first_bucket + i);
      Bucket b;
      b.kind = static_cast<BucketKind>(flat.kind);
      b.size = flat.size;
      b.record_id = flat.record_id;
      b.next_index_segment_phase = flat.next_index_segment_phase;
      b.level = flat.level;
      b.range_lo = std::string(str(flat.range_lo));
      b.range_hi = std::string(str(flat.range_hi));
      b.last_broadcast_key = std::string(str(flat.last_broadcast_key));
      b.slot = flat.slot;
      b.hash_value = flat.hash_value;
      b.shift_phase = flat.shift_phase;
      const auto inflate_entries = [&](std::uint32_t first,
                                       std::uint32_t count,
                                       std::vector<PointerEntry>* out) {
        out->reserve(count);
        for (std::uint32_t e = 0; e < count; ++e) {
          const ArenaPointerEntry& flat_entry = entry(first + e);
          PointerEntry pe;
          // Views into this arena's string pool: the arena must outlive
          // the inflated channels.
          pe.key_lo = str(flat_entry.key_lo);
          pe.key_hi = str(flat_entry.key_hi);
          pe.target_phase = flat_entry.target_phase;
          pe.target_channel = flat_entry.target_channel;
          out->push_back(pe);
        }
      };
      inflate_entries(flat.local_first, flat.local_count, &b.local);
      inflate_entries(flat.control_first, flat.control_count, &b.control);
      b.signature.reserve(flat.signature_count);
      for (std::uint32_t w = 0; w < flat.signature_count; ++w) {
        b.signature.push_back(word(flat.signature_first + w));
      }
      buckets.push_back(std::move(b));
    }
    Result<Channel> channel = Channel::Create(std::move(buckets));
    if (!channel.ok()) return channel.status();
    channels.push_back(std::move(channel).value());
  }
  return channels;
}

}  // namespace airindex
