#ifndef AIRINDEX_BROADCAST_DESCRIBE_H_
#define AIRINDEX_BROADCAST_DESCRIBE_H_

#include <ostream>

#include "broadcast/channel.h"

namespace airindex {

/// Human-readable dump of a broadcast cycle, one line per bucket:
///
///   [   12 @  6000..6499] index  L2 range=[caaab..cazzz] local=17 ctl=2
///   [   13 @  6500..6999] data   record=41
///
/// Prints at most `max_buckets` lines (then an ellipsis with the
/// remaining count). Intended for debugging channel builders and for the
/// examples to show what a scheme actually puts on air.
void DescribeChannel(const Channel& channel, std::ostream& os,
                     std::size_t max_buckets = 64);

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_DESCRIBE_H_
