// Layer: 3 (broadcast) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_BROADCAST_CHANNEL_GROUP_H_
#define AIRINDEX_BROADCAST_CHANNEL_GROUP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "broadcast/channel.h"

namespace airindex {

/// N synchronized periodic broadcast channels plus the client-side cost of
/// hopping between them.
///
/// All channels share the single absolute byte clock: one simulated time
/// unit puts one byte on *each* channel (the multichannel broadcast model
/// of Khatibi & Khatibi and of Lai, Lin & Liu). A client listens to exactly
/// one channel at a time; retuning to another channel loses
/// `switch_cost_bytes` bytes of broadcast — dead air charged to access
/// time but not to tuning time, since the receiver is neither listening
/// nor dozing usefully while its tuner settles.
///
/// Channels may have different cycle lengths (a partitioned data channel
/// is shorter than an index channel replicated elsewhere); phases are
/// always relative to the cycle of the channel that owns the pointer's
/// target (PointerEntry::target_channel).
class ChannelGroup {
 public:
  /// Wraps the channels. Fails when the vector is empty or the switch
  /// cost is negative.
  static Result<ChannelGroup> Create(std::vector<Channel> channels,
                                     Bytes switch_cost_bytes);

  ChannelGroup(const ChannelGroup&) = default;
  ChannelGroup& operator=(const ChannelGroup&) = default;
  ChannelGroup(ChannelGroup&&) = default;
  ChannelGroup& operator=(ChannelGroup&&) = default;

  /// Number of physical channels.
  int num_channels() const { return static_cast<int>(channels_.size()); }

  /// The i-th channel (0 <= i < num_channels()).
  const Channel& channel(int i) const {
    return channels_[static_cast<std::size_t>(i)];
  }

  /// Bytes of broadcast a client loses on every hop between two distinct
  /// channels.
  Bytes switch_cost_bytes() const { return switch_cost_; }

  /// Absolute time at which a client that decides at `now` to retune from
  /// channel `from` to channel `to` can listen again. Staying on the same
  /// channel is free.
  Bytes SwitchCompleteTime(int from, int to, Bytes now) const {
    return from == to ? now : now + switch_cost_;
  }

  /// Longest cycle across the group — the period that bounds any
  /// phase-wait on any channel.
  Bytes max_cycle_bytes() const { return max_cycle_bytes_; }

  /// Bucket counts summed across all channels.
  std::size_t num_buckets() const { return num_buckets_; }
  std::size_t num_data_buckets() const { return num_data_; }
  std::size_t num_index_buckets() const { return num_index_; }
  std::size_t num_signature_buckets() const { return num_signature_; }

  /// Buckets the server has fully broadcast on all channels together by
  /// absolute time `now` (the channels transmit in parallel).
  std::int64_t BucketsBroadcastBy(Bytes now) const;

 private:
  ChannelGroup() = default;

  std::vector<Channel> channels_;
  Bytes switch_cost_ = 0;
  Bytes max_cycle_bytes_ = 0;
  std::size_t num_buckets_ = 0;
  std::size_t num_data_ = 0;
  std::size_t num_index_ = 0;
  std::size_t num_signature_ = 0;
};

/// Group-aware structural validation: per-channel bucket checks plus
/// cross-channel pointer targets — an entry with an explicit
/// target_channel must name a channel of the group and land exactly on a
/// bucket start of *that* channel; an entry with kSameChannel is checked
/// against its own channel, as ValidateChannelStructure does.
Status ValidateChannelGroupStructure(const ChannelGroup& group);

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_CHANNEL_GROUP_H_
