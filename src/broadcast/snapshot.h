// Layer: 3 (broadcast) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_BROADCAST_SNAPSHOT_H_
#define AIRINDEX_BROADCAST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "broadcast/arena.h"

namespace airindex {

/// On-disk header of a program snapshot: a fixed prefix in front of the
/// raw arena buffer. The checksum covers the payload only, so a snapshot
/// load verifies end-to-end integrity before any arena offset is
/// dereferenced; the arena's own header then pins the format version.
struct SnapshotHeader {
  std::uint32_t magic = 0;
  std::uint32_t format_version = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
};
static_assert(sizeof(SnapshotHeader) == 24);

/// Versioned, checksummed serialization of a ProgramArena.
///
/// Serialize → Load → Serialize is byte-identical (the payload is the
/// arena buffer verbatim — "mmap-style": loading adopts the bytes with
/// no transformation), which is what lets built programs be cached on
/// disk across bench runs and shipped between the shards of a
/// process-sharded sweep with bit-identical merged results.
class ProgramSnapshot {
 public:
  static constexpr std::uint32_t kMagic = 0x41534e50u;  // "PNSA" on disk
  /// Bump together with ProgramArena::kFormatVersion changes; stale
  /// cache files from older formats are rejected (and rebuilt), never
  /// misread.
  static constexpr std::uint32_t kFormatVersion = ProgramArena::kFormatVersion;

  /// Snapshot header + arena buffer.
  static std::vector<std::uint8_t> Serialize(const ProgramArena& arena);

  /// Inverse of Serialize. Rejects — with a Status, never UB — a short
  /// or truncated buffer, a bad magic, a version mismatch, a payload
  /// size that disagrees with the buffer, a checksum mismatch (any
  /// bit flip), and any arena whose internal offsets fail validation.
  static Result<ProgramArena> Deserialize(
      const std::vector<std::uint8_t>& bytes);

  /// Writes Serialize(arena) to `path` atomically (temp file + rename),
  /// so a concurrent reader — another sweep shard warming the same
  /// program cache — never observes a half-written snapshot.
  static Status WriteFile(const std::string& path, const ProgramArena& arena);

  /// Reads and Deserializes `path`. NotFound when the file is absent.
  static Result<ProgramArena> LoadFile(const std::string& path);
};

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_SNAPSHOT_H_
