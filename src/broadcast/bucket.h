#ifndef AIRINDEX_BROADCAST_BUCKET_H_
#define AIRINDEX_BROADCAST_BUCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace airindex {

/// Kinds of buckets a scheme can place on the channel.
enum class BucketKind {
  /// Carries one data record (all schemes).
  kData,
  /// Carries B+-tree index information ((1,m) and distributed indexing).
  kIndex,
  /// Carries a record or group signature (signature indexing family).
  kSignature,
};

/// Returns a short printable name for a bucket kind.
const char* BucketKindToString(BucketKind kind);

/// PointerEntry::target_channel value meaning "the channel this bucket is
/// broadcast on" — the single-channel case, and the default so every
/// existing scheme builder stays unchanged.
inline constexpr int kSameChannel = -1;

/// One directory entry inside an index bucket: "keys up to `key_hi` (and
/// from `key_lo`) are reachable at cycle phase `target_phase`".
///
/// Phases are byte positions within one broadcast cycle; a client turns a
/// phase into an absolute arrival time with Channel::NextArrivalOfPhase,
/// which models the paper's "time offset" pointers uniformly across
/// schemes.
///
/// The key bounds are views into Dataset-owned key storage (every scheme
/// keeps its dataset alive via shared_ptr), so index buckets carry no
/// per-entry heap strings and the client walk compares fixed-width views.
struct PointerEntry {
  std::string_view key_lo;
  std::string_view key_hi;
  Bytes target_phase = kInvalidPhase;
  /// Channel the phase is relative to: kSameChannel for the bucket's own
  /// channel (all single-channel schemes), otherwise an index into the
  /// owning ChannelGroup. Clients pay the group's switch cost when they
  /// follow a pointer off their current channel.
  int target_channel = kSameChannel;
};

/// One bucket instance on the broadcast cycle.
///
/// This is deliberately a plain aggregate: builders fill in the fields a
/// scheme uses and leave the rest defaulted. Field groups:
///
/// - all kinds: kind, size, next_index_segment_phase (schemes with index
///   segments store the offset every bucket carries in Fig. 2).
/// - kData: record_id; hashing additionally uses hash_value / shift_phase
///   (the control part) and home_position.
/// - kIndex: level, key range, local index, control index (distributed),
///   last_broadcast_key (distributed).
/// - kSignature: signature words; record_id of the data bucket that
///   follows.
struct Bucket {
  BucketKind kind = BucketKind::kData;
  /// Broadcast size in bytes (== time to read the bucket).
  Bytes size = 0;

  /// Dataset record index for kData / kSignature buckets; -1 when the
  /// bucket carries no record (e.g., an empty hash slot).
  std::int64_t record_id = -1;

  // --- index segments (B+-tree schemes) -------------------------------
  /// Phase of the first bucket of the next index segment.
  Bytes next_index_segment_phase = kInvalidPhase;
  /// Tree level, counted from the leaves: 0 = leaf index bucket. -1 for
  /// non-index buckets.
  int level = -1;
  /// Key range covered by this index node's subtree.
  std::string range_lo;
  std::string range_hi;
  /// Local index: one entry per child (leaf level: per data record).
  std::vector<PointerEntry> local;
  /// Control index (distributed indexing): nearest-ancestor-first entries
  /// pointing at each ancestor's next occurrence after this bucket.
  std::vector<PointerEntry> control;
  /// Key of the data record most recently broadcast before this bucket;
  /// empty if none yet this cycle. Drives the paper's "if K < key most
  /// recently broadcast, go to next broadcast" rule.
  std::string last_broadcast_key;

  // --- hashing control part -------------------------------------------
  /// Hash value this *position* stands for (the control part of the
  /// first Na buckets); -1 beyond the allocated area.
  std::int64_t slot = -1;
  /// Hash value of the record carried in this bucket; -1 if empty.
  std::int64_t hash_value = -1;
  /// Phase of the first bucket holding records whose hash equals `slot`
  /// (the paper's shift value, resolved to a phase). kInvalidPhase beyond
  /// the allocated area.
  Bytes shift_phase = kInvalidPhase;

  // --- signature buckets ----------------------------------------------
  /// Superimposed-coding signature words (signature_bytes * 8 bits).
  std::vector<std::uint64_t> signature;
};

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_BUCKET_H_
