#ifndef AIRINDEX_BROADCAST_GEOMETRY_H_
#define AIRINDEX_BROADCAST_GEOMETRY_H_

#include <algorithm>

#include "common/types.h"

namespace airindex {

/// Byte sizes of everything put on the broadcast channel.
///
/// Defaults reproduce the paper's Table 1 (500-byte records, 25-byte
/// keys). The record/key-ratio experiments (Fig. 6) vary key_bytes while
/// holding record_bytes at 500.
struct BucketGeometry {
  /// Size of one data record; also the size Dt of a data bucket and (per
  /// the uniform-bucket model of Imielinski et al.) of an index bucket.
  Bytes record_bytes = 500;
  /// Size of a primary key as broadcast inside index buckets.
  Bytes key_bytes = 25;
  /// Size of a time-offset pointer inside index/control entries.
  Bytes offset_bytes = 4;
  /// Size It of a signature bucket (signature indexing only).
  Bytes signature_bytes = 16;

  /// Dt: bytes of a data bucket.
  Bytes data_bucket_bytes() const { return record_bytes; }

  /// Bytes of an index bucket (uniform with data buckets, as in the
  /// paper's B+-tree analysis where both are counted as Dt).
  Bytes index_bucket_bytes() const { return record_bytes; }

  /// It: bytes of a signature bucket.
  Bytes signature_bucket_bytes() const { return signature_bytes; }

  /// n: index entries per index bucket — the B+ tree fanout. The paper's
  /// record/key-ratio analysis: "higher record/key ratio implies more
  /// indices likely to be placed in a single bucket".
  int index_fanout() const {
    const Bytes entry = key_bytes + offset_bytes;
    return std::max<int>(2, static_cast<int>(index_bucket_bytes() / entry));
  }

  /// Record/key ratio as defined in Section 5 of the paper.
  double record_key_ratio() const {
    return static_cast<double>(record_bytes) / static_cast<double>(key_bytes);
  }
};

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_GEOMETRY_H_
