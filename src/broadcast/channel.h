// Layer: 3 (broadcast) — see docs/ARCHITECTURE.md for the layer map.
#ifndef AIRINDEX_BROADCAST_CHANNEL_H_
#define AIRINDEX_BROADCAST_CHANNEL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "broadcast/bucket.h"

namespace airindex {

/// One broadcast cycle, repeated forever.
///
/// The channel stores the bucket sequence of a single cycle together with
/// prefix-sum byte offsets. Simulated time is an absolute byte count; the
/// position within the cycle is the *phase* `time % cycle_bytes()`. All
/// pointer fields in buckets are phases, and clients use
/// NextArrivalOfPhase to convert them to absolute wake-up times — this is
/// the paper's "offset value is the arrival time of the bucket".
class Channel {
 public:
  /// Wraps a bucket sequence. Fails if the sequence is empty or any
  /// bucket has a non-positive size.
  static Result<Channel> Create(std::vector<Bucket> buckets);

  Channel(const Channel&) = default;
  Channel& operator=(const Channel&) = default;
  Channel(Channel&&) = default;
  Channel& operator=(Channel&&) = default;

  /// Total bytes of one broadcast cycle (the paper's Bt, in bytes).
  Bytes cycle_bytes() const { return cycle_bytes_; }

  /// Number of buckets in one cycle (the paper's N when all buckets are
  /// uniform).
  std::size_t num_buckets() const { return buckets_.size(); }

  /// The i-th bucket of the cycle.
  const Bucket& bucket(std::size_t i) const { return buckets_[i]; }

  /// All buckets.
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Phase (byte position within the cycle) at which bucket i starts.
  Bytes start_phase(std::size_t i) const { return starts_[i]; }

  /// Phase one past the last byte of bucket i.
  Bytes end_phase(std::size_t i) const { return starts_[i] + buckets_[i].size; }

  /// Index of the bucket whose byte span contains `phase`
  /// (0 <= phase < cycle_bytes()).
  std::size_t BucketAtPhase(Bytes phase) const;

  /// Index of the bucket starting exactly at `phase`; num_buckets() if no
  /// bucket starts there.
  std::size_t BucketStartingAtPhase(Bytes phase) const;

  /// Absolute time (>= now) at which the next bucket boundary occurs.
  /// If `now` is already on a boundary, returns `now`.
  Bytes NextBoundaryTime(Bytes now) const;

  /// Absolute time (>= now) at which the cycle phase equals `phase`.
  /// If `now` is already at that phase, returns `now`.
  Bytes NextArrivalOfPhase(Bytes phase, Bytes now) const;

  /// Number of buckets the server has fully broadcast by absolute time
  /// `now` (>= 0): whole cycles times the cycle's bucket count, plus the
  /// complete buckets of the partial cycle. The telemetry layer reports
  /// this as the server-side "buckets broadcast" counter.
  std::int64_t BucketsBroadcastBy(Bytes now) const;

  /// Count of buckets of each kind.
  std::size_t num_data_buckets() const { return num_data_; }
  std::size_t num_index_buckets() const { return num_index_; }
  std::size_t num_signature_buckets() const { return num_signature_; }

 private:
  Channel() = default;

  std::vector<Bucket> buckets_;
  std::vector<Bytes> starts_;  // starts_[i] = phase of bucket i
  Bytes cycle_bytes_ = 0;
  bool uniform_ = false;   // all buckets the same size (fast phase math)
  Bytes uniform_size_ = 0;
  std::size_t num_data_ = 0;
  std::size_t num_index_ = 0;
  std::size_t num_signature_ = 0;
};

/// Structural validation shared by all schemes: positive sizes, in-range
/// pointer phases that land exactly on bucket starts, next-index-segment
/// pointers that reach index buckets, and monotone non-decreasing record
/// keys within data buckets are checked by scheme-specific tests.
Status ValidateChannelStructure(const Channel& channel);

}  // namespace airindex

#endif  // AIRINDEX_BROADCAST_CHANNEL_H_
