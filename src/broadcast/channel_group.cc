#include "broadcast/channel_group.h"

#include <string>
#include <utility>

namespace airindex {

Result<ChannelGroup> ChannelGroup::Create(std::vector<Channel> channels,
                                          Bytes switch_cost_bytes) {
  if (channels.empty()) {
    return Status::InvalidArgument("channel group needs at least one channel");
  }
  if (switch_cost_bytes < 0) {
    return Status::InvalidArgument("channel switch cost must be >= 0");
  }
  ChannelGroup group;
  group.channels_ = std::move(channels);
  group.switch_cost_ = switch_cost_bytes;
  for (const Channel& ch : group.channels_) {
    group.max_cycle_bytes_ = std::max(group.max_cycle_bytes_, ch.cycle_bytes());
    group.num_buckets_ += ch.num_buckets();
    group.num_data_ += ch.num_data_buckets();
    group.num_index_ += ch.num_index_buckets();
    group.num_signature_ += ch.num_signature_buckets();
  }
  return group;
}

std::int64_t ChannelGroup::BucketsBroadcastBy(Bytes now) const {
  std::int64_t total = 0;
  for (const Channel& ch : channels_) total += ch.BucketsBroadcastBy(now);
  return total;
}

namespace {

Status CheckGroupPointerTargets(const ChannelGroup& group, int channel_id,
                                const Bucket& bucket, std::size_t index) {
  const auto check_entry = [&](const PointerEntry& entry,
                               const char* what) -> Status {
    if (entry.target_phase == kInvalidPhase) return Status::Ok();
    const int target = entry.target_channel == kSameChannel
                           ? channel_id
                           : entry.target_channel;
    if (target < 0 || target >= group.num_channels()) {
      return Status::Internal("channel " + std::to_string(channel_id) +
                              " bucket " + std::to_string(index) + ": " + what +
                              " names channel " + std::to_string(target) +
                              " outside the group");
    }
    const Channel& owner = group.channel(target);
    if (entry.target_phase < 0 || entry.target_phase >= owner.cycle_bytes()) {
      return Status::Internal("channel " + std::to_string(channel_id) +
                              " bucket " + std::to_string(index) + ": " + what +
                              " phase out of range on channel " +
                              std::to_string(target));
    }
    if (owner.BucketStartingAtPhase(entry.target_phase) ==
        owner.num_buckets()) {
      return Status::Internal("channel " + std::to_string(channel_id) +
                              " bucket " + std::to_string(index) + ": " + what +
                              " phase not on a bucket boundary of channel " +
                              std::to_string(target));
    }
    return Status::Ok();
  };
  for (const PointerEntry& e : bucket.local) {
    if (Status s = check_entry(e, "local entry"); !s.ok()) return s;
  }
  for (const PointerEntry& e : bucket.control) {
    if (Status s = check_entry(e, "control entry"); !s.ok()) return s;
  }
  // Segment and shift pointers never cross channels.
  PointerEntry synthetic;
  synthetic.target_phase = bucket.next_index_segment_phase;
  if (Status s = check_entry(synthetic, "next-index-segment"); !s.ok()) {
    return s;
  }
  synthetic.target_phase = bucket.shift_phase;
  if (Status s = check_entry(synthetic, "shift"); !s.ok()) return s;
  return Status::Ok();
}

}  // namespace

Status ValidateChannelGroupStructure(const ChannelGroup& group) {
  for (int c = 0; c < group.num_channels(); ++c) {
    const Channel& channel = group.channel(c);
    for (std::size_t i = 0; i < channel.num_buckets(); ++i) {
      const Bucket& bucket = channel.bucket(i);
      if (bucket.size <= 0) {
        return Status::Internal("channel " + std::to_string(c) + " bucket " +
                                std::to_string(i) + " has non-positive size");
      }
      if (Status s = CheckGroupPointerTargets(group, c, bucket, i); !s.ok()) {
        return s;
      }
      if (bucket.kind == BucketKind::kIndex &&
          bucket.range_lo > bucket.range_hi) {
        return Status::Internal("channel " + std::to_string(c) + " bucket " +
                                std::to_string(i) + " has inverted key range");
      }
    }
  }
  return Status::Ok();
}

}  // namespace airindex
