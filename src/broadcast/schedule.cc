#include "broadcast/schedule.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

namespace airindex {

const char* SchedulerKindToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFlat:
      return "flat";
    case SchedulerKind::kSquareRoot:
      return "sqrt";
    case SchedulerKind::kOnline:
      return "online";
  }
  return "unknown";
}

bool ParseSchedulerKind(std::string_view text, SchedulerKind* out) {
  for (const SchedulerKind kind :
       {SchedulerKind::kFlat, SchedulerKind::kSquareRoot,
        SchedulerKind::kOnline}) {
    if (text == SchedulerKindToString(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<double> ZipfRankPopularity(int num_ranks, double theta,
                                   int rank_offset, int total_ranks) {
  if (num_ranks <= 0 || rank_offset < 0) return {};
  std::vector<double> popularity(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    popularity[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(rank_offset + i + 1), theta);
  }
  double norm = 0.0;
  if (total_ranks > rank_offset) {
    for (int k = 0; k < total_ranks; ++k) {
      norm += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    }
  } else {
    norm = std::accumulate(popularity.begin(), popularity.end(), 0.0);
  }
  for (double& p : popularity) p /= norm;
  return popularity;
}

int DiskAssignment::DiskOfPosition(int position) const {
  const auto it =
      std::upper_bound(disk_begin.begin(), disk_begin.end(), position);
  return static_cast<int>(it - disk_begin.begin()) - 1;
}

std::vector<int> DiskAssignment::DiskOfRecord() const {
  std::vector<int> disk_of(record_order.size(), 0);
  for (int d = 0; d < num_disks(); ++d) {
    for (int p = disk_begin[static_cast<std::size_t>(d)];
         p < disk_begin[static_cast<std::size_t>(d) + 1]; ++p) {
      disk_of[static_cast<std::size_t>(
          record_order[static_cast<std::size_t>(p)])] = d;
    }
  }
  return disk_of;
}

std::int64_t DiskAssignment::SlotsPerMajorCycle() const {
  std::int64_t slots = 0;
  for (int d = 0; d < num_disks(); ++d) {
    slots += static_cast<std::int64_t>(
                 disk_begin[static_cast<std::size_t>(d) + 1] -
                 disk_begin[static_cast<std::size_t>(d)]) *
             frequencies[static_cast<std::size_t>(d)];
  }
  return slots;
}

namespace {

/// Shared frequency validation: positive, non-increasing, every entry
/// dividing the hottest disk's.
Status ValidateFrequencies(const std::vector<int>& frequencies) {
  const int max_freq = frequencies.front();
  for (std::size_t d = 0; d < frequencies.size(); ++d) {
    const int freq = frequencies[d];
    if (freq <= 0 || freq > max_freq || max_freq % freq != 0) {
      return Status::InvalidArgument(
          "disk frequencies must be positive, non-increasing, and divide "
          "the hottest disk's frequency");
    }
    if (d > 0 && freq > frequencies[d - 1]) {
      return Status::InvalidArgument("disk frequencies must be non-increasing");
    }
  }
  return Status::Ok();
}

std::vector<int> IdentityOrder(int num_records) {
  std::vector<int> order(static_cast<std::size_t>(num_records));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace

Result<DiskAssignment> AssignmentFromFractions(
    const std::vector<double>& fractions, const std::vector<int>& frequencies,
    int num_records) {
  const std::size_t num_disks = fractions.size();
  if (num_disks == 0 || frequencies.size() != num_disks) {
    return Status::InvalidArgument(
        "disk_fractions and disk_frequencies must be non-empty and match");
  }
  double fraction_sum = 0.0;
  for (const double f : fractions) {
    if (f <= 0.0) {
      return Status::InvalidArgument("disk fractions must be positive");
    }
    fraction_sum += f;
  }
  if (std::fabs(fraction_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("disk fractions must sum to 1");
  }
  if (Status s = ValidateFrequencies(frequencies); !s.ok()) return s;
  if (num_records < static_cast<int>(num_disks)) {
    return Status::InvalidArgument("need at least one record per disk");
  }

  // Record ranges per disk, by cumulative fraction (at least one each).
  DiskAssignment assignment;
  assignment.frequencies = frequencies;
  assignment.record_order = IdentityOrder(num_records);
  assignment.disk_begin.assign(num_disks + 1, 0);
  double cumulative = 0.0;
  for (std::size_t d = 0; d < num_disks; ++d) {
    cumulative += fractions[d];
    assignment.disk_begin[d + 1] = std::clamp(
        static_cast<int>(std::lround(cumulative * num_records)),
        assignment.disk_begin[d] + 1,
        num_records - static_cast<int>(num_disks - d - 1));
  }
  assignment.disk_begin[num_disks] = num_records;
  return assignment;
}

Result<DiskAssignment> SquareRootAssignment(
    const std::vector<double>& popularity, int num_disks) {
  const int num_records = static_cast<int>(popularity.size());
  if (num_records == 0) {
    return Status::InvalidArgument(
        "square-root assignment needs a popularity profile");
  }
  if (num_disks < 1 || num_disks > 64) {
    return Status::InvalidArgument("num_disks must be in [1, 64]");
  }
  if (num_records < num_disks) {
    return Status::InvalidArgument("need at least one record per disk");
  }
  std::vector<double> sqrt_mass(popularity.size());
  for (std::size_t i = 0; i < popularity.size(); ++i) {
    if (popularity[i] <= 0.0) {
      return Status::InvalidArgument("popularity must be positive");
    }
    if (i > 0 && popularity[i] > popularity[i - 1]) {
      return Status::InvalidArgument(
          "popularity must be non-increasing (rank order)");
    }
    sqrt_mass[i] = std::sqrt(popularity[i]);
  }
  const double total_mass =
      std::accumulate(sqrt_mass.begin(), sqrt_mass.end(), 0.0);

  // Boundaries: each disk takes an equal share of the sqrt-popularity
  // mass (the square-root rule allocates bandwidth ∝ √p, so equal-mass
  // tiers are equal-bandwidth tiers), at least one record per disk.
  DiskAssignment assignment;
  assignment.record_order = IdentityOrder(num_records);
  assignment.disk_begin.assign(static_cast<std::size_t>(num_disks) + 1, 0);
  double cumulative = 0.0;
  int position = 0;
  for (int d = 0; d < num_disks; ++d) {
    const double target =
        total_mass * static_cast<double>(d + 1) / num_disks;
    const int limit = num_records - (num_disks - d - 1);
    do {
      cumulative += sqrt_mass[static_cast<std::size_t>(position++)];
    } while (position < limit && cumulative < target);
    assignment.disk_begin[static_cast<std::size_t>(d) + 1] = position;
  }
  assignment.disk_begin[static_cast<std::size_t>(num_disks)] = num_records;

  // Frequencies: disk d's mean √p relative to the coldest disk's, rounded
  // onto the divisors of the hottest frequency (exact per-cycle
  // accounting needs every f_d to divide f_0). Capped at 64 so a very
  // skewed profile cannot explode the cycle.
  std::vector<double> mean_mass(static_cast<std::size_t>(num_disks));
  for (int d = 0; d < num_disks; ++d) {
    const int lo = assignment.disk_begin[static_cast<std::size_t>(d)];
    const int hi = assignment.disk_begin[static_cast<std::size_t>(d) + 1];
    const double sum = std::accumulate(sqrt_mass.begin() + lo,
                                       sqrt_mass.begin() + hi, 0.0);
    mean_mass[static_cast<std::size_t>(d)] = sum / (hi - lo);
  }
  const double coldest = mean_mass.back();
  const int max_freq = static_cast<int>(
      std::clamp<long>(std::lround(mean_mass.front() / coldest), 1, 64));
  assignment.frequencies.assign(static_cast<std::size_t>(num_disks), 1);
  assignment.frequencies.front() = max_freq;
  for (int d = 1; d < num_disks; ++d) {
    const double ratio = mean_mass[static_cast<std::size_t>(d)] / coldest;
    int best = 1;
    for (int divisor = 1; divisor <= max_freq; ++divisor) {
      if (max_freq % divisor != 0) continue;
      // Ties go to the larger (hotter) divisor: divisor increases, so
      // ">= fabs" keeps the later candidate.
      if (std::fabs(divisor - ratio) <= std::fabs(best - ratio)) {
        best = divisor;
      }
    }
    assignment.frequencies[static_cast<std::size_t>(d)] = std::min(
        best, assignment.frequencies[static_cast<std::size_t>(d) - 1]);
  }
  return assignment;
}

Result<DiskAssignment> ScheduleAssignmentFor(const ScheduleParams& params,
                                             int num_records) {
  if (!params.active()) {
    return Status::InvalidArgument(
        "flat scheduling has no disk assignment");
  }
  if (params.theta < 0.0) {
    return Status::InvalidArgument(
        "schedule theta is unresolved (< 0); core resolves it from the "
        "workload before building programs");
  }
  const std::vector<double> popularity = ZipfRankPopularity(
      num_records, params.theta, params.rank_offset, params.total_ranks);
  if (popularity.empty()) {
    return Status::InvalidArgument("schedule popularity profile is empty");
  }
  return SquareRootAssignment(popularity, params.num_disks);
}

DiskLayout BuildDiskLayout(const DiskAssignment& assignment) {
  const int num_disks = assignment.num_disks();
  const int max_freq = assignment.max_frequency();

  // Chunk each disk into max_freq / f_d contiguous chunks over the
  // popularity-order positions (balanced split; empty chunks are allowed
  // for tiny disks), exactly as the classic algorithm.
  struct Chunk {
    int first;
    int last;  // inclusive
  };
  std::vector<std::vector<Chunk>> chunks(static_cast<std::size_t>(num_disks));
  for (int d = 0; d < num_disks; ++d) {
    const int num_chunks =
        max_freq / assignment.frequencies[static_cast<std::size_t>(d)];
    const int begin = assignment.disk_begin[static_cast<std::size_t>(d)];
    const int size =
        assignment.disk_begin[static_cast<std::size_t>(d) + 1] - begin;
    chunks[static_cast<std::size_t>(d)].reserve(
        static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c) {
      const int first =
          begin + static_cast<int>(static_cast<std::int64_t>(c) * size /
                                   num_chunks);
      const int last =
          begin + static_cast<int>(static_cast<std::int64_t>(c + 1) * size /
                                   num_chunks) -
          1;
      chunks[static_cast<std::size_t>(d)].push_back(Chunk{first, last});
    }
  }

  // Major cycle: minor cycle i carries chunk (i mod chunks_d) of disk d.
  DiskLayout layout;
  layout.record_slots.resize(assignment.record_order.size());
  layout.minor_begin.reserve(static_cast<std::size_t>(max_freq) + 1);
  for (int minor = 0; minor < max_freq; ++minor) {
    layout.minor_begin.push_back(static_cast<int>(layout.slot_record.size()));
    for (int d = 0; d < num_disks; ++d) {
      const std::vector<Chunk>& disk_chunks =
          chunks[static_cast<std::size_t>(d)];
      const Chunk& chunk =
          disk_chunks[static_cast<std::size_t>(minor) % disk_chunks.size()];
      for (int p = chunk.first; p <= chunk.last; ++p) {
        const int record = assignment.record_order[static_cast<std::size_t>(p)];
        layout.record_slots[static_cast<std::size_t>(record)].push_back(
            static_cast<int>(layout.slot_record.size()));
        layout.slot_record.push_back(record);
      }
    }
  }
  layout.minor_begin.push_back(static_cast<int>(layout.slot_record.size()));
  return layout;
}

OnlineRetierer::OnlineRetierer(DiskAssignment initial)
    : assignment_(std::move(initial)),
      scores_(assignment_.record_order.size(), 0),
      epoch_counts_(assignment_.record_order.size(), 0),
      disk_of_(assignment_.DiskOfRecord()) {}

void OnlineRetierer::Observe(int record) {
  if (record < 0 || record >= assignment_.num_records()) return;
  ++epoch_counts_[static_cast<std::size_t>(record)];
  ++observed_;
}

int OnlineRetierer::EndEpoch() {
  ++epochs_;
  observed_ = 0;
  for (std::size_t r = 0; r < scores_.size(); ++r) {
    scores_[r] = scores_[r] / 2 + epoch_counts_[r];
    epoch_counts_[r] = 0;
  }
  std::vector<int> order = IdentityOrder(assignment_.num_records());
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const std::int64_t score_a = scores_[static_cast<std::size_t>(a)];
    const std::int64_t score_b = scores_[static_cast<std::size_t>(b)];
    if (score_a != score_b) return score_a > score_b;
    const int disk_a = disk_of_[static_cast<std::size_t>(a)];
    const int disk_b = disk_of_[static_cast<std::size_t>(b)];
    if (disk_a != disk_b) return disk_a < disk_b;
    return a < b;
  });
  assignment_.record_order = std::move(order);
  int moves = 0;
  for (int p = 0; p < assignment_.num_records(); ++p) {
    const int record = assignment_.record_order[static_cast<std::size_t>(p)];
    const int disk = assignment_.DiskOfPosition(p);
    if (disk_of_[static_cast<std::size_t>(record)] != disk) {
      disk_of_[static_cast<std::size_t>(record)] = disk;
      ++moves;
    }
  }
  total_moves_ += moves;
  return moves;
}

}  // namespace airindex
