#include "broadcast/channel.h"

#include <algorithm>
#include <string>
#include <utility>

namespace airindex {

const char* BucketKindToString(BucketKind kind) {
  switch (kind) {
    case BucketKind::kData:
      return "data";
    case BucketKind::kIndex:
      return "index";
    case BucketKind::kSignature:
      return "signature";
  }
  return "unknown";
}

Result<Channel> Channel::Create(std::vector<Bucket> buckets) {
  if (buckets.empty()) {
    return Status::InvalidArgument("channel needs at least one bucket");
  }
  Channel channel;
  channel.buckets_ = std::move(buckets);
  channel.starts_.reserve(channel.buckets_.size());
  Bytes at = 0;
  bool uniform = true;
  const Bytes first_size = channel.buckets_.front().size;
  for (const Bucket& b : channel.buckets_) {
    if (b.size <= 0) {
      return Status::InvalidArgument("bucket with non-positive size");
    }
    channel.starts_.push_back(at);
    at += b.size;
    uniform = uniform && b.size == first_size;
    switch (b.kind) {
      case BucketKind::kData:
        ++channel.num_data_;
        break;
      case BucketKind::kIndex:
        ++channel.num_index_;
        break;
      case BucketKind::kSignature:
        ++channel.num_signature_;
        break;
    }
  }
  channel.cycle_bytes_ = at;
  channel.uniform_ = uniform;
  channel.uniform_size_ = first_size;
  return channel;
}

std::size_t Channel::BucketAtPhase(Bytes phase) const {
  if (uniform_) {
    return static_cast<std::size_t>(phase / uniform_size_);
  }
  const auto it =
      std::upper_bound(starts_.begin(), starts_.end(), phase);
  return static_cast<std::size_t>(it - starts_.begin()) - 1;
}

std::size_t Channel::BucketStartingAtPhase(Bytes phase) const {
  const std::size_t i = BucketAtPhase(phase);
  return starts_[i] == phase ? i : buckets_.size();
}

Bytes Channel::NextBoundaryTime(Bytes now) const {
  const Bytes phase = now % cycle_bytes_;
  const std::size_t i = BucketAtPhase(phase);
  if (starts_[i] == phase) return now;
  return now + (end_phase(i) - phase);
}

std::int64_t Channel::BucketsBroadcastBy(Bytes now) const {
  if (now <= 0) return 0;
  const Bytes cycles = now / cycle_bytes_;
  const Bytes phase = now % cycle_bytes_;
  // BucketAtPhase names the bucket containing `phase` (or just starting
  // there), which equals the number of complete buckets this cycle.
  const auto partial = static_cast<std::int64_t>(BucketAtPhase(phase));
  return cycles * static_cast<std::int64_t>(buckets_.size()) + partial;
}

Bytes Channel::NextArrivalOfPhase(Bytes phase, Bytes now) const {
  const Bytes current = now % cycle_bytes_;
  Bytes delta = phase - current;
  if (delta < 0) delta += cycle_bytes_;
  return now + delta;
}

namespace {

Status CheckPointerTargets(const Channel& channel, const Bucket& bucket,
                           std::size_t index) {
  const auto check_entry = [&](const PointerEntry& entry,
                               const char* what) -> Status {
    if (entry.target_phase == kInvalidPhase) return Status::Ok();
    if (entry.target_phase < 0 || entry.target_phase >= channel.cycle_bytes()) {
      return Status::Internal("bucket " + std::to_string(index) + ": " + what +
                              " phase out of range");
    }
    if (channel.BucketStartingAtPhase(entry.target_phase) ==
        channel.num_buckets()) {
      return Status::Internal("bucket " + std::to_string(index) + ": " + what +
                              " phase not on a bucket boundary");
    }
    return Status::Ok();
  };
  for (const PointerEntry& e : bucket.local) {
    if (Status s = check_entry(e, "local entry"); !s.ok()) return s;
  }
  for (const PointerEntry& e : bucket.control) {
    if (Status s = check_entry(e, "control entry"); !s.ok()) return s;
  }
  PointerEntry synthetic;
  synthetic.target_phase = bucket.next_index_segment_phase;
  if (Status s = check_entry(synthetic, "next-index-segment"); !s.ok()) {
    return s;
  }
  synthetic.target_phase = bucket.shift_phase;
  if (Status s = check_entry(synthetic, "shift"); !s.ok()) return s;
  return Status::Ok();
}

}  // namespace

Status ValidateChannelStructure(const Channel& channel) {
  for (std::size_t i = 0; i < channel.num_buckets(); ++i) {
    const Bucket& bucket = channel.bucket(i);
    if (bucket.size <= 0) {
      return Status::Internal("bucket " + std::to_string(i) +
                              " has non-positive size");
    }
    if (Status s = CheckPointerTargets(channel, bucket, i); !s.ok()) return s;
    if (bucket.kind == BucketKind::kIndex && bucket.range_lo > bucket.range_hi) {
      return Status::Internal("bucket " + std::to_string(i) +
                              " has inverted key range");
    }
  }
  return Status::Ok();
}

}  // namespace airindex
